file(REMOVE_RECURSE
  "../bench/bench_security_reputation"
  "../bench/bench_security_reputation.pdb"
  "CMakeFiles/bench_security_reputation.dir/bench_security_reputation.cpp.o"
  "CMakeFiles/bench_security_reputation.dir/bench_security_reputation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_security_reputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
