# Empty dependencies file for bench_security_reputation.
# This may be replaced when dependencies are built.
