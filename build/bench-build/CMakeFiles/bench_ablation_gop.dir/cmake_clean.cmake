file(REMOVE_RECURSE
  "../bench/bench_ablation_gop"
  "../bench/bench_ablation_gop.pdb"
  "CMakeFiles/bench_ablation_gop.dir/bench_ablation_gop.cpp.o"
  "CMakeFiles/bench_ablation_gop.dir/bench_ablation_gop.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
