
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_supernodes.cpp" "bench-build/CMakeFiles/bench_ablation_supernodes.dir/bench_ablation_supernodes.cpp.o" "gcc" "bench-build/CMakeFiles/bench_ablation_supernodes.dir/bench_ablation_supernodes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/systems/CMakeFiles/cloudfog_systems.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cloudfog_core.dir/DependInfo.cmake"
  "/root/repo/build/src/p2p/CMakeFiles/cloudfog_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/cloudfog_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cloudfog_net.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/cloudfog_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/game/CMakeFiles/cloudfog_game.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/cloudfog_world.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cloudfog_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cloudfog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
