# Empty dependencies file for bench_ablation_supernodes.
# This may be replaced when dependencies are built.
