file(REMOVE_RECURSE
  "../bench/bench_ablation_supernodes"
  "../bench/bench_ablation_supernodes.pdb"
  "CMakeFiles/bench_ablation_supernodes.dir/bench_ablation_supernodes.cpp.o"
  "CMakeFiles/bench_ablation_supernodes.dir/bench_ablation_supernodes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_supernodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
