file(REMOVE_RECURSE
  "../bench/bench_incentives"
  "../bench/bench_incentives.pdb"
  "CMakeFiles/bench_incentives.dir/bench_incentives.cpp.o"
  "CMakeFiles/bench_incentives.dir/bench_incentives.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_incentives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
