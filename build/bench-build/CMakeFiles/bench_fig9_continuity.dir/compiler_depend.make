# Empty compiler generated dependencies file for bench_fig9_continuity.
# This may be replaced when dependencies are built.
