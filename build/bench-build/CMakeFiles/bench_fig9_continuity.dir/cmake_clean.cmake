file(REMOVE_RECURSE
  "../bench/bench_fig9_continuity"
  "../bench/bench_fig9_continuity.pdb"
  "CMakeFiles/bench_fig9_continuity.dir/bench_fig9_continuity.cpp.o"
  "CMakeFiles/bench_fig9_continuity.dir/bench_fig9_continuity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_continuity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
