# Empty dependencies file for bench_world_updates.
# This may be replaced when dependencies are built.
