file(REMOVE_RECURSE
  "../bench/bench_world_updates"
  "../bench/bench_world_updates.pdb"
  "CMakeFiles/bench_world_updates.dir/bench_world_updates.cpp.o"
  "CMakeFiles/bench_world_updates.dir/bench_world_updates.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_world_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
