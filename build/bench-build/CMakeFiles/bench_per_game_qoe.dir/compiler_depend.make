# Empty compiler generated dependencies file for bench_per_game_qoe.
# This may be replaced when dependencies are built.
