file(REMOVE_RECURSE
  "../bench/bench_per_game_qoe"
  "../bench/bench_per_game_qoe.pdb"
  "CMakeFiles/bench_per_game_qoe.dir/bench_per_game_qoe.cpp.o"
  "CMakeFiles/bench_per_game_qoe.dir/bench_per_game_qoe.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_per_game_qoe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
