// Tests for the trace recorder and its Chrome trace_event JSON export —
// including a schema/validity check done by actually parsing the emitted
// document, the same guarantee chrome://tracing / Perfetto rely on.
#include "obs/trace.h"

#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/timer.h"

namespace cloudfog::obs {
namespace {

json::Value parse_or_die(const std::string& text) {
  json::ParseResult result = json::parse(text);
  EXPECT_TRUE(result.ok) << result.error << " at " << result.error_pos;
  return result.value;
}

TEST(TraceRecorderTest, RecordsAndCounts) {
  TraceRecorder t;
  t.span("work", "bench", 10.0, 5.0, kWallTrack);
  t.instant("marker", "sim", 20.0, kSimTrack);
  t.counter("depth", 30.0, 7.0, kSimTrack);
  EXPECT_EQ(t.event_count(), 3u);
  EXPECT_EQ(t.dropped_count(), 0u);
  t.clear();
  EXPECT_EQ(t.event_count(), 0u);
}

TEST(TraceRecorderTest, CapacityDropsAreCountedNotFatal) {
  TraceRecorder t(2);
  for (int i = 0; i < 5; ++i) {
    t.instant("e" + std::to_string(i), "x", static_cast<double>(i), kSimTrack);
  }
  EXPECT_EQ(t.event_count(), 2u);
  EXPECT_EQ(t.dropped_count(), 3u);

  const json::Value doc = parse_or_die(t.to_chrome_json());
  const json::Value* other = doc.find("otherData");
  ASSERT_NE(other, nullptr);
  const json::Value* dropped = other->find("droppedEvents");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->number, 3.0);
}

TEST(TraceRecorderTest, ChromeJsonIsValidAndWellFormed) {
  TraceRecorder t;
  t.span("run \"quoted\"", "bench", 100.0, 250.5, kWallTrack);
  t.instant("start", "systems", 0.0, kSimTrack);
  t.counter("sim.queue.depth", 1'000.0, 42.0, kSimTrack);

  const std::string text = t.to_chrome_json();
  const json::Value doc = parse_or_die(text);
  ASSERT_TRUE(doc.is_object());

  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // 2 thread_name metadata events + the 3 recorded ones.
  ASSERT_EQ(events->array.size(), 5u);

  // Every event must carry the mandatory trace_event fields.
  for (const json::Value& e : events->array) {
    ASSERT_TRUE(e.is_object());
    ASSERT_NE(e.find("name"), nullptr);
    ASSERT_NE(e.find("ph"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
  }

  // Metadata first: both tracks named.
  EXPECT_EQ(events->array[0].find("ph")->string, "M");
  EXPECT_EQ(events->array[1].find("ph")->string, "M");

  const json::Value& span = events->array[2];
  EXPECT_EQ(span.find("ph")->string, "X");
  EXPECT_EQ(span.find("name")->string, "run \"quoted\"");
  EXPECT_EQ(span.find("ts")->number, 100.0);
  ASSERT_NE(span.find("dur"), nullptr);
  EXPECT_EQ(span.find("dur")->number, 250.5);
  EXPECT_EQ(span.find("tid")->number, static_cast<double>(kWallTrack));

  const json::Value& instant = events->array[3];
  EXPECT_EQ(instant.find("ph")->string, "i");
  ASSERT_NE(instant.find("s"), nullptr);  // instant scope, required by viewers

  const json::Value& counter = events->array[4];
  EXPECT_EQ(counter.find("ph")->string, "C");
  const json::Value* args = counter.find("args");
  ASSERT_NE(args, nullptr);
  ASSERT_NE(args->find("value"), nullptr);
  EXPECT_EQ(args->find("value")->number, 42.0);

  ASSERT_NE(doc.find("displayTimeUnit"), nullptr);
  EXPECT_EQ(doc.find("displayTimeUnit")->string, "ms");
}

TEST(GlobalTracerTest, HelpersAreNoOpsWithoutTracer) {
  ASSERT_EQ(tracer(), nullptr);
  trace_sim_instant("ghost", "x", 1.0);
  trace_sim_counter("ghost", 1.0, 2.0);
  EXPECT_EQ(tracer(), nullptr);
}

TEST(GlobalTracerTest, SimHelpersConvertMillisecondsToMicroseconds) {
  TraceRecorder t;
  {
    ScopedTracer scoped(t);
    EXPECT_EQ(tracer(), &t);
    trace_sim_instant("tick", "sim", 2.5);          // 2.5 sim-ms
    trace_sim_counter("depth", 4.0, 11.0);          // 4.0 sim-ms
  }
  EXPECT_EQ(tracer(), nullptr);

  const json::Value doc = parse_or_die(t.to_chrome_json());
  const json::Value& events = *doc.find("traceEvents");
  ASSERT_EQ(events.array.size(), 4u);  // 2 metadata + 2 recorded
  EXPECT_EQ(events.array[2].find("ts")->number, 2'500.0);
  EXPECT_EQ(events.array[2].find("tid")->number, static_cast<double>(kSimTrack));
  EXPECT_EQ(events.array[3].find("ts")->number, 4'000.0);
}

TEST(ScopedTimerTest, RecordsWallSpanAndHistogram) {
  MetricsRegistry r;
  TraceRecorder t;
  {
    ScopedRegistry sr(r);
    ScopedTracer st(t);
    CF_TIMED_SCOPE("timers.test.scope");
  }
  const Histogram* h = r.find_histogram("timers.test.scope");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);

  const json::Value doc = parse_or_die(t.to_chrome_json());
  const json::Value& events = *doc.find("traceEvents");
  ASSERT_EQ(events.array.size(), 3u);
  const json::Value& span = events.array[2];
  EXPECT_EQ(span.find("ph")->string, "X");
  EXPECT_EQ(span.find("name")->string, "timers.test.scope");
  EXPECT_EQ(span.find("tid")->number, static_cast<double>(kWallTrack));
  EXPECT_GE(span.find("dur")->number, 0.0);
}

TEST(ScopedTimerTest, NoOpWhenNothingInstalled) {
  ASSERT_EQ(registry(), nullptr);
  ASSERT_EQ(tracer(), nullptr);
  CF_TIMED_SCOPE("timers.ghost");  // must not crash or allocate global state
  EXPECT_EQ(registry(), nullptr);
}

}  // namespace
}  // namespace cloudfog::obs
