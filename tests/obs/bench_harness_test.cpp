// Tests for the bench harness: flag extraction, the uninstrumented
// fast path, and a schema/validity check of the BENCH_*.json artifact
// produced by a real (small) simulator run.
#include "obs/bench_harness.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "util/flags.h"

namespace cloudfog::obs {
namespace {

json::Value parse_file_or_die(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << "missing " << path;
  std::ostringstream os;
  os << is.rdbuf();
  json::ParseResult result = json::parse(os.str());
  EXPECT_TRUE(result.ok) << result.error << " at " << result.error_pos;
  return result.value;
}

util::Flags make_flags(const std::vector<const char*>& args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return util::Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchOptionsTest, DefaultsAreAllOff) {
  const util::Flags flags = make_flags({});
  const BenchOptions o = bench_options_from_flags(flags, "x");
  EXPECT_TRUE(o.metrics_out.empty());
  EXPECT_TRUE(o.trace_out.empty());
  EXPECT_TRUE(o.bench_json.empty());
  EXPECT_EQ(o.warmup, 0);
  EXPECT_EQ(o.repeats, 1);
}

TEST(BenchOptionsTest, BareBenchJsonGetsDefaultName) {
  const util::Flags flags = make_flags({"--bench-json"});
  const BenchOptions o = bench_options_from_flags(flags, "fig5_coverage");
  EXPECT_EQ(o.bench_json, "BENCH_fig5_coverage.json");
}

TEST(BenchOptionsTest, ExplicitValuesParse) {
  const util::Flags flags =
      make_flags({"--bench-json=out.json", "--metrics-out=m.csv",
                  "--trace-out=t.json", "--bench-warmup=2",
                  "--bench-repeats=3"});
  const BenchOptions o = bench_options_from_flags(flags, "x");
  EXPECT_EQ(o.bench_json, "out.json");
  EXPECT_EQ(o.metrics_out, "m.csv");
  EXPECT_EQ(o.trace_out, "t.json");
  EXPECT_EQ(o.warmup, 2);
  EXPECT_EQ(o.repeats, 3);
}

TEST(BenchHarnessTest, NoOutputsRunsBodyOnceUninstrumented) {
  BenchHarness harness("t", BenchOptions{});
  int calls = 0;
  const int rc = harness.run([&]() -> int {
    ++calls;
    // The fast path must not install collection globals.
    EXPECT_EQ(registry(), nullptr);
    EXPECT_EQ(tracer(), nullptr);
    return 0;
  });
  EXPECT_EQ(rc, 0);
  EXPECT_EQ(calls, 1);
}

TEST(BenchHarnessTest, PropagatesBodyExitCode) {
  BenchHarness harness("t", BenchOptions{});
  EXPECT_EQ(harness.run([]() -> int { return 7; }), 7);
}

TEST(BenchHarnessTest, WarmupAndRepeatsRunBodyExpectedTimes) {
  BenchOptions o;
  o.bench_json = ::testing::TempDir() + "/BENCH_counts.json";
  o.warmup = 2;
  o.repeats = 3;
  BenchHarness harness("counts", o);
  int calls = 0;
  const int rc = harness.run([&]() -> int {
    ++calls;
    EXPECT_NE(registry(), nullptr);
    return 0;
  });
  EXPECT_EQ(rc, 0);
  EXPECT_EQ(calls, 5);
}

TEST(BenchHarnessTest, BenchJsonMatchesSchemaForSimulatorBody) {
  const std::string dir = ::testing::TempDir();
  BenchOptions o;
  o.bench_json = dir + "/BENCH_sim.json";
  o.trace_out = dir + "/trace_sim.json";
  o.metrics_out = dir + "/metrics_sim.json";
  o.repeats = 2;
  BenchHarness harness("sim", o);

  const int rc = harness.run([]() -> int {
    CF_TIMED_SCOPE("timers.test.body");
    sim::Simulator sim;
    for (int i = 0; i < 500; ++i) {
      sim.schedule_at(static_cast<double>(i % 37), [] {});
    }
    sim.run_all();
    record_bench_result("BM_Fake/512", 123.5);
    return 0;
  });
  ASSERT_EQ(rc, 0);

  const json::Value doc = parse_file_or_die(o.bench_json);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("schema_version")->number, 1.0);
  EXPECT_EQ(doc.find("bench")->string, "sim");
  EXPECT_EQ(doc.find("warmup")->number, 0.0);
  EXPECT_EQ(doc.find("repeats")->number, 2.0);

  const json::Value* wall = doc.find("wall_ms");
  ASSERT_NE(wall, nullptr);
  const json::Value* runs = wall->find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_TRUE(runs->is_array());
  EXPECT_EQ(runs->array.size(), 2u);
  EXPECT_GE(wall->find("mean")->number, 0.0);
  EXPECT_LE(wall->find("min")->number, wall->find("max")->number);

  // The instrumented simulator feeds the headline numbers: the artifact
  // snapshots the final repeat, which executed exactly 500 events.
  const json::Value* events = doc.find("events");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->find("executed")->number, 500.0);
  EXPECT_GE(events->find("per_sec")->number, 0.0);
  EXPECT_GT(doc.find("peak_queue_depth")->number, 0.0);

  const json::Value* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("sim.events.executed"), nullptr);
  EXPECT_EQ(counters->find("sim.events.scheduled")->number, 500.0);

  const json::Value* timers = doc.find("timers_ms");
  ASSERT_NE(timers, nullptr);
  const json::Value* body_timer = timers->find("timers.test.body");
  ASSERT_NE(body_timer, nullptr);
  EXPECT_EQ(body_timer->find("count")->number, 1.0);  // final repeat only
  ASSERT_NE(body_timer->find("total"), nullptr);
  ASSERT_NE(body_timer->find("mean"), nullptr);
  ASSERT_NE(body_timer->find("p95"), nullptr);

  // Per-case results published via record_bench_result() land in the
  // "benchmarks" section with the gauge prefix stripped; the carrier gauge
  // itself must not leak into downstream consumers' counter section.
  const json::Value* benchmarks = doc.find("benchmarks");
  ASSERT_NE(benchmarks, nullptr);
  ASSERT_NE(benchmarks->find("BM_Fake/512"), nullptr);
  EXPECT_EQ(benchmarks->find("BM_Fake/512")->number, 123.5);

  // The sibling artifacts must be valid JSON too.
  const json::Value metrics = parse_file_or_die(o.metrics_out);
  EXPECT_EQ(metrics.find("schema_version")->number, 1.0);
  const json::Value trace = parse_file_or_die(o.trace_out);
  ASSERT_NE(trace.find("traceEvents"), nullptr);
  EXPECT_TRUE(trace.find("traceEvents")->is_array());

  // Collection is torn down once run() returns.
  EXPECT_EQ(registry(), nullptr);
  EXPECT_EQ(tracer(), nullptr);
}

TEST(BenchHarnessTest, ArtifactWriteFailureReturnsOne) {
  BenchOptions o;
  o.bench_json = "/nonexistent-dir-xyz/BENCH_t.json";
  BenchHarness harness("t", o);
  EXPECT_EQ(harness.run([]() -> int { return 0; }), 1);
}

}  // namespace
}  // namespace cloudfog::obs
