// Unit tests for the obs metrics primitives: counter/gauge semantics,
// registry lookup and reset behaviour, histogram quantiles against a
// sorted-sample oracle, and a multi-threaded hammer (the test the tsan CI
// preset exists for).
#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cloudfog::obs {
namespace {

TEST(CounterTest, AddValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, TracksCurrentValueAndPeak) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(g.max(), 0.0);
  g.set(3.0);
  g.set(9.0);
  g.set(2.0);
  EXPECT_EQ(g.value(), 2.0);
  EXPECT_EQ(g.max(), 9.0);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(g.max(), 0.0);
}

TEST(HistogramTest, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_TRUE(h.nonzero_buckets().empty());
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.record(-5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0.0);
  // The whole sample sits in the first linear bucket.
  EXPECT_LE(h.quantile(1.0), 1.0 / 32.0 + 1e-12);
}

// The quantile estimate returns the upper edge of the bucket holding the
// q-th sample, so it must sit within one bucket width above the exact
// (sorted-sample) quantile: exact <= estimate <= exact * (1 + 1/sub_buckets)
// for values >= 1, plus an absolute slack of one linear slot below 1.
void check_against_oracle(const std::vector<double>& samples) {
  Histogram h;
  for (double v : samples) h.record(v);

  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());

  for (double q : {0.0, 0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0}) {
    // Same nearest-rank convention the histogram uses: smallest index with
    // cumulative count >= q * n.
    const auto n = sorted.size();
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank > 0) --rank;
    const double exact = sorted[rank];
    const double estimate = h.quantile(q);
    EXPECT_GE(estimate, exact - 1e-9) << "q=" << q;
    // Relative error bound: one sub-bucket of the containing power-of-two
    // range (factor 2/32), plus absolute slack for the linear [0,1) range.
    EXPECT_LE(estimate, exact * (1.0 + 2.0 / 32.0) + 1.0 / 32.0 + 1e-9)
        << "q=" << q;
  }
}

TEST(HistogramTest, QuantilesMatchSortedOracleUniform) {
  util::Rng rng(1234);
  std::vector<double> samples;
  for (int i = 0; i < 10'000; ++i) samples.push_back(rng.uniform(0.0, 500.0));
  check_against_oracle(samples);
}

TEST(HistogramTest, QuantilesMatchSortedOracleHeavyTailed) {
  util::Rng rng(99);
  std::vector<double> samples;
  // Spans several orders of magnitude — exercises many exponent ranges.
  for (int i = 0; i < 10'000; ++i) {
    samples.push_back(rng.pareto_with_mean(20.0, 2.0));
  }
  check_against_oracle(samples);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(static_cast<double>(i));
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.quantile(0.99), 0.0);
  EXPECT_TRUE(h.nonzero_buckets().empty());
}

TEST(HistogramTest, BucketCountsSumToRecordCount) {
  Histogram h;
  util::Rng rng(7);
  for (int i = 0; i < 5'000; ++i) h.record(rng.uniform(0.0, 1e6));
  std::uint64_t total = 0;
  for (const auto& [edge, count] : h.nonzero_buckets()) total += count;
  EXPECT_EQ(total, h.count());
}

TEST(MetricsRegistryTest, CreatesOnFirstUseAndFindsByKind) {
  MetricsRegistry r;
  EXPECT_EQ(r.size(), 0u);
  Counter& c = r.counter("events");
  c.add(3);
  Gauge& g = r.gauge("depth");
  g.set(5.0);
  r.histogram("latency").record(12.0);
  EXPECT_EQ(r.size(), 3u);

  // Same name returns the same instrument, not a new one.
  EXPECT_EQ(&r.counter("events"), &c);
  EXPECT_EQ(r.counter("events").value(), 3u);

  ASSERT_NE(r.find_counter("events"), nullptr);
  EXPECT_EQ(r.find_counter("events")->value(), 3u);
  ASSERT_NE(r.find_gauge("depth"), nullptr);
  ASSERT_NE(r.find_histogram("latency"), nullptr);

  // Lookups never create, and a name of one kind is invisible to the others.
  EXPECT_EQ(r.find_counter("missing"), nullptr);
  EXPECT_EQ(r.find_gauge("events"), nullptr);
  EXPECT_EQ(r.find_histogram("events"), nullptr);
  EXPECT_EQ(r.find_counter("depth"), nullptr);
  EXPECT_EQ(r.size(), 3u);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsHandlesValid) {
  MetricsRegistry r;
  Counter& c = r.counter("n");
  Gauge& g = r.gauge("g");
  Histogram& h = r.histogram("h");
  c.add(10);
  g.set(4.0);
  h.record(1.5);

  r.reset();
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);

  // The old references still feed the same registry entries.
  c.add(2);
  EXPECT_EQ(r.find_counter("n")->value(), 2u);
}

TEST(MetricsRegistryTest, ForEachVisitsInInsertionOrder) {
  MetricsRegistry r;
  r.counter("zebra");
  r.gauge("alpha");
  r.histogram("mid");
  std::vector<std::string> names;
  r.for_each([&](const std::string& name, const Counter*, const Gauge*,
                 const Histogram*) { names.push_back(name); });
  EXPECT_EQ(names, (std::vector<std::string>{"zebra", "alpha", "mid"}));
}

TEST(GlobalRegistryTest, MacrosAreNoOpsWithoutInstalledRegistry) {
  ASSERT_EQ(registry(), nullptr);
  // Must not crash, and must not create any global state.
  CF_OBS_COUNT("ghost.counter", 1);
  CF_OBS_GAUGE_SET("ghost.gauge", 2.0);
  CF_OBS_HIST("ghost.hist", 3.0);
  EXPECT_EQ(registry(), nullptr);
}

TEST(GlobalRegistryTest, ScopedRegistryInstallsAndRestores) {
  ASSERT_EQ(registry(), nullptr);
  MetricsRegistry r;
  {
    ScopedRegistry scoped(r);
    EXPECT_EQ(registry(), &r);
    CF_OBS_COUNT("scoped.counter", 5);
    CF_OBS_GAUGE_SET("scoped.gauge", 7.5);
    CF_OBS_HIST("scoped.hist", 0.25);
  }
  EXPECT_EQ(registry(), nullptr);
  EXPECT_EQ(r.find_counter("scoped.counter")->value(), 5u);
  EXPECT_EQ(r.find_gauge("scoped.gauge")->value(), 7.5);
  EXPECT_EQ(r.find_histogram("scoped.hist")->count(), 1u);
}

TEST(GlobalRegistryTest, ScopedRegistriesNest) {
  MetricsRegistry outer, inner;
  ScopedRegistry s1(outer);
  {
    ScopedRegistry s2(inner);
    CF_OBS_COUNT("n", 1);
  }
  CF_OBS_COUNT("n", 1);
  EXPECT_EQ(inner.find_counter("n")->value(), 1u);
  EXPECT_EQ(outer.find_counter("n")->value(), 1u);
}

// Concurrent adds on shared instruments plus create-on-first-use races on
// the registry map. Run under -fsanitize=thread (the `tsan` preset) this
// proves the locking/atomics story; under any build it proves no update is
// lost.
TEST(MetricsRegistryTest, ConcurrentRecordingLosesNothing) {
  MetricsRegistry r;
  ScopedRegistry scoped(r);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  // Raw threads on purpose: the registry's thread-safety IS the property
  // under test, and no simulation state exists in this process.
  std::vector<std::thread> threads;  // lint:allow(raw-thread)
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &r] {
      // The install is thread-scoped, so each hammer thread installs the
      // shared registry itself — the instruments then race on r's atomics,
      // which is the contract this test (and the tsan preset) checks.
      ScopedRegistry install(r);
      for (int i = 0; i < kPerThread; ++i) {
        CF_OBS_COUNT("hammer.shared", 1);
        CF_OBS_HIST("hammer.hist", static_cast<double>(i % 100));
        CF_OBS_GAUGE_SET("hammer.gauge", static_cast<double>(t));
        // Per-thread name: exercises concurrent map insertion too.
        CF_OBS_COUNT(("hammer.t" + std::to_string(t)).c_str(), 1);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(r.find_counter("hammer.shared")->value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(r.find_histogram("hammer.hist")->count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(r.find_counter("hammer.t" + std::to_string(t))->value(),
              static_cast<std::uint64_t>(kPerThread));
  }
}

}  // namespace
}  // namespace cloudfog::obs
