// Schema/validity tests for the metrics exporters: the JSON document is
// parsed back and checked field-by-field, CSV/JSONL shapes are verified,
// and write_metrics' extension dispatch is exercised through temp files.
#include "obs/exporters.h"

#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace cloudfog::obs {
namespace {

json::Value parse_or_die(const std::string& text) {
  json::ParseResult result = json::parse(text);
  EXPECT_TRUE(result.ok) << result.error << " at " << result.error_pos;
  return result.value;
}

MetricsRegistry& sample_registry() {
  static MetricsRegistry* r = [] {
    auto* reg = new MetricsRegistry();
    reg->counter("sim.events.executed").add(1'000);
    reg->gauge("sim.queue.depth").set(3.0);
    reg->gauge("sim.queue.depth").set(12.0);
    reg->gauge("sim.queue.depth").set(5.0);
    Histogram& h = reg->histogram("net.latency.one_way_ms");
    for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
    return reg;
  }();
  return *r;
}

TEST(ExportersTest, JsonDocumentMatchesSchema) {
  const json::Value doc = parse_or_die(metrics_to_json(sample_registry()));
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.find("schema_version"), nullptr);
  EXPECT_EQ(doc.find("schema_version")->number, 1.0);

  const json::Value* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->is_object());
  const json::Value* executed = counters->find("sim.events.executed");
  ASSERT_NE(executed, nullptr);
  EXPECT_EQ(executed->number, 1'000.0);

  const json::Value* gauges = doc.find("gauges");
  ASSERT_NE(gauges, nullptr);
  const json::Value* depth = gauges->find("sim.queue.depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->find("value")->number, 5.0);
  EXPECT_EQ(depth->find("max")->number, 12.0);

  const json::Value* histograms = doc.find("histograms");
  ASSERT_NE(histograms, nullptr);
  const json::Value* lat = histograms->find("net.latency.one_way_ms");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->find("count")->number, 100.0);
  EXPECT_EQ(lat->find("min")->number, 1.0);
  EXPECT_EQ(lat->find("max")->number, 100.0);
  EXPECT_DOUBLE_EQ(lat->find("sum")->number, 5'050.0);
  EXPECT_DOUBLE_EQ(lat->find("mean")->number, 50.5);
  // Quantile estimates may overshoot by a bucket width but never undershoot.
  EXPECT_GE(lat->find("p50")->number, 50.0);
  EXPECT_LE(lat->find("p50")->number, 55.0);
  EXPECT_GE(lat->find("p95")->number, 95.0);
  EXPECT_LE(lat->find("p99")->number, 106.0);

  const json::Value* buckets = lat->find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->is_array());
  double total = 0.0, prev_edge = -1.0;
  for (const json::Value& pair : buckets->array) {
    ASSERT_TRUE(pair.is_array());
    ASSERT_EQ(pair.array.size(), 2u);
    EXPECT_GT(pair.array[0].number, prev_edge);  // edges ascend
    prev_edge = pair.array[0].number;
    total += pair.array[1].number;
  }
  EXPECT_EQ(total, 100.0);
}

TEST(ExportersTest, EscapesAwkwardMetricNames) {
  MetricsRegistry r;
  r.counter("weird \"name\"\\with\nstuff").add(1);
  const json::Value doc = parse_or_die(metrics_to_json(r));
  const json::Value* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("weird \"name\"\\with\nstuff"), nullptr);
}

TEST(ExportersTest, CsvHasHeaderAndExpectedRows) {
  const std::string csv = metrics_to_csv(sample_registry());
  std::istringstream is(csv);
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, "kind,name,field,value");

  std::vector<std::string> lines;
  while (std::getline(is, line)) lines.push_back(line);
  // 1 counter row + 2 gauge rows + 7 histogram rows.
  EXPECT_EQ(lines.size(), 10u);
  EXPECT_EQ(lines[0], "counter,sim.events.executed,value,1000");
  EXPECT_EQ(lines[1], "gauge,sim.queue.depth,value,5");
  EXPECT_EQ(lines[2], "gauge,sim.queue.depth,max,12");
  EXPECT_EQ(lines[3], "histogram,net.latency.one_way_ms,count,100");
}

TEST(ExportersTest, JsonlEveryLineParses) {
  const std::string jsonl = metrics_to_jsonl(sample_registry());
  std::istringstream is(jsonl);
  std::string line;
  int n = 0;
  while (std::getline(is, line)) {
    const json::Value v = parse_or_die(line);
    ASSERT_TRUE(v.is_object());
    ASSERT_NE(v.find("kind"), nullptr);
    ASSERT_NE(v.find("name"), nullptr);
    ++n;
  }
  EXPECT_EQ(n, 3);
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(ExportersTest, WriteMetricsDispatchesOnExtension) {
  const std::string dir = ::testing::TempDir();
  const std::string json_path = dir + "/metrics_out.json";
  const std::string csv_path = dir + "/metrics_out.csv";
  const std::string jsonl_path = dir + "/metrics_out.jsonl";

  ASSERT_TRUE(write_metrics(sample_registry(), json_path));
  ASSERT_TRUE(write_metrics(sample_registry(), csv_path));
  ASSERT_TRUE(write_metrics(sample_registry(), jsonl_path));

  EXPECT_EQ(slurp(json_path), metrics_to_json(sample_registry()));
  EXPECT_EQ(slurp(csv_path), metrics_to_csv(sample_registry()));
  EXPECT_EQ(slurp(jsonl_path), metrics_to_jsonl(sample_registry()));
}

TEST(ExportersTest, WriteFileFailsOnBadPath) {
  EXPECT_FALSE(write_file("/nonexistent-dir-xyz/out.json", "{}"));
}

TEST(JsonTest, NumHandlesSpecialValues) {
  EXPECT_EQ(json::num(0.0), "0");
  EXPECT_EQ(json::num(2.5), "2.5");
  EXPECT_EQ(json::num(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json::num(std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonTest, ParserRejectsGarbage) {
  EXPECT_FALSE(json::parse("{").ok);
  EXPECT_FALSE(json::parse("{} trailing").ok);
  EXPECT_FALSE(json::parse("{\"a\":}").ok);
  EXPECT_TRUE(json::parse("  {\"a\": [1, 2.5, \"x\", true, null]}  ").ok);
}

}  // namespace
}  // namespace cloudfog::obs
