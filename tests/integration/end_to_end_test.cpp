// End-to-end checks across the whole pipeline: a scenario built once drives
// coverage, bandwidth and streaming — the way the benchmark harnesses use
// the library — plus cross-experiment consistency properties.
#include <gtest/gtest.h>

#include "core/incentive.h"
#include "systems/bandwidth.h"
#include "systems/coverage.h"
#include "systems/streaming_sim.h"
#include "systems/supernode_experiment.h"

namespace cloudfog::systems {
namespace {

const Scenario& world() {
  static const Scenario scenario = [] {
    ScenarioParams p = ScenarioParams::simulation_defaults(42);
    p.num_players = 1'200;
    p.num_datacenters = 10;
    p.num_supernodes = 80;
    p.dc_uplink_kbps = 150'000.0;
    return Scenario::build(p);
  }();
  return scenario;
}

TEST(EndToEnd, OneScenarioDrivesAllExperiments) {
  CoverageConfig cc;
  cc.datacenter_counts = {5, 10};
  cc.supernode_counts = {0, 80};
  cc.latency_requirements = {50, 110};
  cc.samples = 1;
  cc.warmup_ms = kMsPerMinute;
  const auto coverage = measure_coverage(world(), cc);
  EXPECT_GT(coverage.dc_sweep[1][1], coverage.dc_sweep[0][0]);

  const auto bandwidth = measure_bandwidth(SystemKind::kCloudFogB, world(), 800);
  EXPECT_GT(bandwidth.reduction_vs_cloud_mbps, 0.0);

  StreamingOptions so;
  so.num_players = 500;
  so.warmup_ms = 1'000.0;
  so.duration_ms = 4'000.0;
  const auto streaming = run_streaming(SystemKind::kCloudFogB, world(), so);
  EXPECT_GT(streaming.segments_generated, 0u);
}

TEST(EndToEnd, BandwidthAndStreamingAgreeOnOffload) {
  // The assignment used by the analytic bandwidth model and the streaming
  // simulation must offload comparable player fractions (they use the same
  // algorithm on the same scenario, different random subsets).
  const auto bandwidth = measure_bandwidth(SystemKind::kCloudFogB, world(), 800);
  StreamingOptions so;
  so.num_players = 800;
  so.warmup_ms = 500.0;
  so.duration_ms = 1'000.0;
  const auto streaming = run_streaming(SystemKind::kCloudFogB, world(), so);
  const double bw_fraction =
      static_cast<double>(bandwidth.supernode_supported) / 800.0;
  const double stream_fraction =
      static_cast<double>(streaming.supernode_supported) / 800.0;
  EXPECT_NEAR(bw_fraction, stream_fraction, 0.10);
}

TEST(EndToEnd, IncentiveModelSupportsTheScenarioEconomics) {
  // Deploying the scenario's supernodes must be economically coherent: the
  // bandwidth saved (Eq 2) values more than the rewards paid, for a sane
  // price point.
  const auto bandwidth = measure_bandwidth(SystemKind::kCloudFogB, world(), 800);
  core::IncentiveParams params;
  params.stream_rate_kbps = 900.0;  // mixed-catalog mean bitrate
  const double n = static_cast<double>(bandwidth.supernode_supported);
  const double m = static_cast<double>(bandwidth.active_supernodes);
  EXPECT_GT(core::bandwidth_reduction(params, n, m), 0.0);
}

TEST(EndToEnd, StrategiesComposeInSingleSupernodeHarness) {
  // CloudFog/A (both strategies) at an overloaded supernode must do at
  // least as well as the worse individual strategy.
  SupernodeExperimentConfig base;
  base.num_players = 25;
  base.warmup_ms = 4'000.0;
  base.duration_ms = 8'000.0;
  auto a = base;
  a.adaptation = true;
  a.scheduling = true;
  auto adapt_only = base;
  adapt_only.adaptation = true;
  auto sched_only = base;
  sched_only.scheduling = true;
  const double sat_b = run_supernode_experiment(base).satisfied_fraction;
  const double sat_a = run_supernode_experiment(a).satisfied_fraction;
  const double sat_adapt = run_supernode_experiment(adapt_only).satisfied_fraction;
  const double sat_sched = run_supernode_experiment(sched_only).satisfied_fraction;
  EXPECT_GT(sat_a, sat_b);
  EXPECT_GE(sat_a + 0.08, std::min(sat_adapt, sat_sched));
}

TEST(EndToEnd, PlanetLabScenarioRunsAllExperiments) {
  ScenarioParams p = ScenarioParams::planetlab_defaults(7);
  p.num_players = 400;
  p.num_supernodes = 60;
  const Scenario pl = Scenario::build(p);

  const auto bandwidth = measure_bandwidth(SystemKind::kCloudFogB, pl, 300);
  EXPECT_GT(bandwidth.supernode_supported, 0u);

  StreamingOptions so;
  so.num_players = 300;
  so.warmup_ms = 1'000.0;
  so.duration_ms = 3'000.0;
  const auto cloud = run_streaming(SystemKind::kCloud, pl, so);
  const auto fog = run_streaming(SystemKind::kCloudFogB, pl, so);
  EXPECT_GT(cloud.segments_generated, 0u);
  EXPECT_LT(fog.cloud_uplink_mbps, cloud.cloud_uplink_mbps);
}

}  // namespace
}  // namespace cloudfog::systems
