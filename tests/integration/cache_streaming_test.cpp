// Segment-cache streaming integration — DESIGN.md §11 acceptance tests.
//
// Three contracts, all over the real end-to-end streaming pipeline:
//   1. Determinism: cache-on runs are a pure function of (scenario,
//      options, seed) — repeat runs and --jobs=1 vs --jobs=8 batches
//      produce bit-identical QoE digests.
//   2. The ablation headline: at ample capacity the cache cuts cloud
//      egress by >= 30% versus the capacity-0 fetch-everything baseline,
//      with QoE (continuity, latency) within 1% of that baseline.
//   3. Wiring: fleet counters add up, and both the packet (CloudFog/A)
//      and fluid (CloudFog/B) supernode paths route through the cache.
#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "exec/run_executor.h"
#include "systems/streaming_sim.h"

namespace cloudfog::systems {
namespace {

ScenarioParams cache_params(double kbit_per_slot, std::uint64_t seed = 7) {
  ScenarioParams p = ScenarioParams::simulation_defaults(seed);
  p.num_players = 400;
  p.num_supernodes = 40;
  p.dc_uplink_kbps = 1'250'000.0 * 400.0 / 10'000.0;
  p.use_segment_cache = true;
  p.cache_kbit_per_slot = kbit_per_slot;
  return p;
}

StreamingOptions quick_options() {
  StreamingOptions o;
  o.num_players = 200;
  o.warmup_ms = 1'000.0;
  o.duration_ms = 3'000.0;
  o.drain_ms = 500.0;
  return o;
}

/// FNV-1a over the bit patterns of the QoE metrics plus the cache
/// counters — two runs agree iff everything observable is bit-identical.
std::uint64_t qoe_digest(const StreamingResult& r) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xffu;
      h *= 0x100000001b3ull;
    }
  };
  const auto mix_double = [&mix](double d) {
    mix(std::bit_cast<std::uint64_t>(d));
  };
  mix_double(r.mean_response_latency_ms);
  mix_double(r.p95_response_latency_ms);
  mix_double(r.mean_continuity);
  mix_double(r.satisfied_fraction);
  mix_double(r.cloud_uplink_mbps);
  mix(r.segments_generated);
  mix(r.packets_dropped);
  mix(r.cache.hits);
  mix(r.cache.misses);
  mix(r.cache.transcodes);
  mix(r.cache.evictions);
  mix_double(r.cache.bytes_cloud_kbit);
  mix_double(r.cache.bytes_edge_kbit);
  return h;
}

TEST(CacheStreamingTest, CacheOnRunsAreDeterministic) {
  const ScenarioParams params = cache_params(1'000.0);
  const Scenario scenario = Scenario::build(params);
  const auto first =
      run_streaming(SystemKind::kCloudFogA, scenario, quick_options());
  const auto second =
      run_streaming(SystemKind::kCloudFogA, scenario, quick_options());
  EXPECT_EQ(qoe_digest(first), qoe_digest(second))
      << "cache-on run is not a pure function of its inputs";
  EXPECT_EQ(first.cache.hits, second.cache.hits);
  EXPECT_EQ(first.cache.evictions, second.cache.evictions);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(first.cache.bytes_cloud_kbit),
            std::bit_cast<std::uint64_t>(second.cache.bytes_cloud_kbit));
}

TEST(CacheStreamingTest, JobsOneAndJobsEightAgreeWithCacheOn) {
  std::vector<StreamingRunSpec> specs;
  for (double capacity : {0.0, 500.0, 2'000.0}) {
    for (SystemKind kind : {SystemKind::kCloudFogA, SystemKind::kCloudFogB}) {
      StreamingRunSpec spec;
      spec.kind = kind;
      spec.scenario = cache_params(capacity);
      spec.options = quick_options();
      specs.push_back(spec);
    }
  }
  exec::RunExecutor sequential(1);
  const auto seq = run_streaming_batch(specs, sequential);
  exec::RunExecutor parallel(8);
  const auto par = run_streaming_batch(specs, parallel);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(qoe_digest(seq[i]), qoe_digest(par[i]))
        << "cache-on run " << i << " diverged between --jobs=1 and --jobs=8";
  }
}

TEST(CacheStreamingTest, AmpleCapacityCutsEgressWithoutHurtingQoE) {
  const StreamingOptions options = quick_options();
  const Scenario baseline_scenario = Scenario::build(cache_params(0.0));
  const Scenario cached_scenario = Scenario::build(cache_params(4'000.0));
  const auto baseline =
      run_streaming(SystemKind::kCloudFogA, baseline_scenario, options);
  const auto cached =
      run_streaming(SystemKind::kCloudFogA, cached_scenario, options);

  // Capacity 0 = fetch everything: it is the egress ceiling.
  ASSERT_GT(baseline.cache.bytes_cloud_kbit, 0.0);
  ASSERT_EQ(baseline.cache.hits, 0u);

  // The acceptance bar: >= 30% cloud-egress reduction at ample capacity...
  EXPECT_LE(cached.cache.bytes_cloud_kbit,
            0.70 * baseline.cache.bytes_cloud_kbit)
      << "cache cut egress by less than 30%";
  // ...with QoE within 1% of the no-cache baseline.
  EXPECT_GE(cached.mean_continuity, baseline.mean_continuity - 0.01);
  EXPECT_LE(cached.mean_response_latency_ms,
            baseline.mean_response_latency_ms * 1.01);
}

TEST(CacheStreamingTest, FleetCountersAddUp) {
  const Scenario scenario = Scenario::build(cache_params(1'000.0));
  const auto r =
      run_streaming(SystemKind::kCloudFogA, scenario, quick_options());
  EXPECT_GT(r.cache.hits, 0u);
  EXPECT_GT(r.cache.misses, 0u);
  EXPECT_GE(r.cache.misses, r.cache.transcodes);
  EXPECT_GT(r.cache.bytes_cloud_kbit, 0.0);
  EXPECT_GT(r.cache.bytes_edge_kbit, 0.0);
  // Every supernode-served request was either a hit or a miss; nothing is
  // double counted (fetches is derived as misses - transcodes).
  EXPECT_EQ(r.cache.fetches() + r.cache.transcodes, r.cache.misses);
}

TEST(CacheStreamingTest, FluidPathAlsoRoutesThroughTheCache) {
  // CloudFog/B supernodes use the fluid QueuedSender: the harness (not the
  // packet sender) must route those submissions through the cache.
  const Scenario scenario = Scenario::build(cache_params(1'000.0));
  const auto r =
      run_streaming(SystemKind::kCloudFogB, scenario, quick_options());
  EXPECT_GT(r.cache.hits + r.cache.misses, 0u)
      << "fluid supernode path bypassed the cache";
}

TEST(CacheStreamingTest, CacheOffReportsZeroCacheActivity) {
  ScenarioParams p = cache_params(1'000.0);
  p.use_segment_cache = false;
  const Scenario scenario = Scenario::build(p);
  const auto r =
      run_streaming(SystemKind::kCloudFogA, scenario, quick_options());
  EXPECT_EQ(r.cache.hits, 0u);
  EXPECT_EQ(r.cache.misses, 0u);
  EXPECT_DOUBLE_EQ(r.cache.bytes_cloud_kbit, 0.0);
}

}  // namespace
}  // namespace cloudfog::systems
