#include "systems/cooperation_experiment.h"

#include <gtest/gtest.h>

namespace cloudfog::systems {
namespace {

CooperationExperimentConfig quick(double skew, bool striping) {
  CooperationExperimentConfig c;
  c.primary_skew = skew;
  c.enable_striping = striping;
  c.warmup_ms = 3'000.0;
  c.duration_ms = 8'000.0;
  return c;
}

TEST(CooperationExperiment, BalancedLoadRunsClean) {
  const auto r = run_cooperation_experiment(quick(0.5, false));
  EXPECT_GT(r.satisfied_fraction, 0.8);
  EXPECT_GT(r.mean_continuity, 0.9);
  // Pair-average utilization sits below 1: the pair has slack even though
  // a skewed single assignment can overload one member.
  EXPECT_NEAR((r.offered_load_a + r.offered_load_b) / 2.0, 0.7, 0.2);
}

TEST(CooperationExperiment, SkewOverloadsThePrimary) {
  const auto r = run_cooperation_experiment(quick(0.95, false));
  EXPECT_GT(r.offered_load_a, 2.0 * r.offered_load_b);
  EXPECT_LT(r.satisfied_fraction, 0.6);
}

TEST(CooperationExperiment, StripingRecoversSkewedLoad) {
  const auto single = run_cooperation_experiment(quick(0.95, false));
  const auto striped = run_cooperation_experiment(quick(0.95, true));
  EXPECT_GT(striped.satisfied_fraction, single.satisfied_fraction + 0.2);
  EXPECT_LT(striped.mean_response_latency_ms,
            single.mean_response_latency_ms);
}

TEST(CooperationExperiment, StripingNearNeutralWhenBalanced) {
  const auto single = run_cooperation_experiment(quick(0.5, false));
  const auto striped = run_cooperation_experiment(quick(0.5, true));
  EXPECT_NEAR(striped.satisfied_fraction, single.satisfied_fraction, 0.15);
}

TEST(CooperationExperiment, Deterministic) {
  const auto r1 = run_cooperation_experiment(quick(0.8, true));
  const auto r2 = run_cooperation_experiment(quick(0.8, true));
  EXPECT_DOUBLE_EQ(r1.satisfied_fraction, r2.satisfied_fraction);
  EXPECT_DOUBLE_EQ(r1.mean_response_latency_ms, r2.mean_response_latency_ms);
}

TEST(CooperationExperiment, RejectsBadConfig) {
  auto c = quick(0.5, false);
  c.num_players = 1;
  EXPECT_THROW(run_cooperation_experiment(c), std::logic_error);
  auto c2 = quick(1.5, false);
  EXPECT_THROW(run_cooperation_experiment(c2), std::logic_error);
}

}  // namespace
}  // namespace cloudfog::systems
