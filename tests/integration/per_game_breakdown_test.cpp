// Integration test of the per-game QoE breakdown: the paper's premise —
// games differ in latency tolerance — must show up as ordered QoE.
#include <gtest/gtest.h>

#include "systems/streaming_sim.h"

namespace cloudfog::systems {
namespace {

const Scenario& world() {
  static const Scenario scenario = [] {
    ScenarioParams p = ScenarioParams::simulation_defaults(3);
    p.num_players = 1'500;
    p.num_supernodes = 100;
    p.dc_uplink_kbps = 150'000.0;
    return Scenario::build(p);
  }();
  return scenario;
}

StreamingResult run(SystemKind kind) {
  StreamingOptions options;
  options.num_players = 900;
  options.warmup_ms = 1'500.0;
  options.duration_ms = 5'000.0;
  return run_streaming(kind, world(), options);
}

TEST(PerGameBreakdown, CountsSumToPlayers) {
  const auto r = run(SystemKind::kCloudFogA);
  std::size_t total = 0;
  for (std::size_t g = 0; g < 5; ++g) total += r.players_by_game[g];
  EXPECT_EQ(total, 900u);
  for (std::size_t g = 0; g < 5; ++g) {
    EXPECT_GT(r.players_by_game[g], 0u) << "game " << g << " unplayed";
  }
}

TEST(PerGameBreakdown, MetricsAreFractions) {
  const auto r = run(SystemKind::kCloud);
  for (std::size_t g = 0; g < 5; ++g) {
    EXPECT_GE(r.continuity_by_game[g], 0.0);
    EXPECT_LE(r.continuity_by_game[g], 1.0);
    EXPECT_GE(r.satisfied_by_game[g], 0.0);
    EXPECT_LE(r.satisfied_by_game[g], 1.0);
  }
}

TEST(PerGameBreakdown, TolerantGamesFareBetter) {
  // Under strain, QoE must broadly order by latency requirement: the most
  // tolerant game (110 ms) clearly beats the strictest (30 ms).
  const auto r = run(SystemKind::kCloudFogA);
  EXPECT_GT(r.continuity_by_game[4], r.continuity_by_game[0] + 0.1);
  EXPECT_GE(r.satisfied_by_game[4], r.satisfied_by_game[0]);
}

TEST(PerGameBreakdown, CloudFogLiftsTolerantGamesMost) {
  const auto cloud = run(SystemKind::kCloud);
  const auto fog = run(SystemKind::kCloudFogA);
  // The aggregate improves...
  EXPECT_GT(fog.mean_continuity, cloud.mean_continuity * 0.95);
  // ...and the 90/110 ms games see a real satisfaction lift.
  EXPECT_GT(fog.satisfied_by_game[3] + fog.satisfied_by_game[4],
            cloud.satisfied_by_game[3] + cloud.satisfied_by_game[4]);
}

}  // namespace
}  // namespace cloudfog::systems
