// Integration tests of the single-supernode packet-level experiment (paper
// Figures 10 and 11).
#include "systems/supernode_experiment.h"

#include <gtest/gtest.h>

namespace cloudfog::systems {
namespace {

SupernodeExperimentConfig quick(std::size_t players, std::uint64_t seed = 7) {
  SupernodeExperimentConfig c;
  c.num_players = players;
  c.warmup_ms = 4'000.0;
  c.duration_ms = 8'000.0;
  c.seed = seed;
  return c;
}

TEST(SupernodeExperiment, LightLoadFullySatisfied) {
  const auto r = run_supernode_experiment(quick(5));
  EXPECT_GT(r.satisfied_fraction, 0.75);
  EXPECT_GT(r.mean_continuity, 0.9);
  EXPECT_LT(r.offered_load(), 0.5);
  EXPECT_EQ(r.packets_dropped, 0u);
}

TEST(SupernodeExperiment, OverloadCollapsesBaseline) {
  auto c = quick(25);
  const auto r = run_supernode_experiment(c);
  EXPECT_GT(r.offered_load(), 0.9);
  EXPECT_LT(r.satisfied_fraction, 0.7);
}

TEST(SupernodeExperiment, AdaptationImprovesOverloadedBaseline) {
  // Paper Figure 10: the encoding-rate adaptation lifts satisfaction when
  // the supernode supports many players.
  // True overload (offered > uplink) starves receive buffers, which is
  // what triggers Eq (11); the warmup covers the controller's
  // consecutive-estimate convergence.
  auto base = quick(25);
  base.warmup_ms = 10'000.0;
  base.duration_ms = 10'000.0;
  auto adapt = base;
  adapt.adaptation = true;
  const auto rb = run_supernode_experiment(base);
  const auto ra = run_supernode_experiment(adapt);
  EXPECT_GT(ra.satisfied_fraction, rb.satisfied_fraction);
  // Adaptation works by lowering the encoding level.
  EXPECT_LT(ra.mean_quality_level, rb.mean_quality_level);
}

TEST(SupernodeExperiment, SchedulingImprovesOverloadedBaseline) {
  // Paper Figure 11: deadline-driven buffer scheduling lifts satisfaction.
  auto base = quick(25);
  auto sched = base;
  sched.scheduling = true;
  const auto rb = run_supernode_experiment(base);
  const auto rs = run_supernode_experiment(sched);
  EXPECT_GT(rs.satisfied_fraction, rb.satisfied_fraction);
}

TEST(SupernodeExperiment, SchedulerDropsWithinToleranceBudgets) {
  auto c = quick(25);
  c.scheduling = true;
  c.uplink_kbps = 21'000.0;  // push into clear overload to force drops
  const auto r = run_supernode_experiment(c);
  EXPECT_GT(r.packets_dropped, 0u);
  // Total drops can never exceed the sum of per-segment tolerance budgets,
  // which is bounded by the largest catalog tolerance.
  EXPECT_LT(static_cast<double>(r.packets_dropped),
            0.6 * static_cast<double>(r.packets_submitted));
}

TEST(SupernodeExperiment, BaselineNeverDrops) {
  auto c = quick(25);
  c.uplink_kbps = 15'000.0;
  const auto r = run_supernode_experiment(c);
  EXPECT_EQ(r.packets_dropped, 0u);
}

TEST(SupernodeExperiment, SatisfactionDegradesWithPlayers) {
  double prev = 2.0;
  std::vector<double> sats;
  for (std::size_t k : {5u, 15u, 25u}) {
    sats.push_back(run_supernode_experiment(quick(k)).satisfied_fraction);
  }
  EXPECT_GE(sats.front() + 0.1, sats.back());
  EXPECT_LT(sats.back(), prev);
}

TEST(SupernodeExperiment, OnTimePlusMissedEqualsSubmitted) {
  const auto r = run_supernode_experiment(quick(10));
  EXPECT_LE(r.packets_on_time, r.packets_submitted);
  EXPECT_GT(r.packets_submitted, 1'000u);
}

TEST(SupernodeExperiment, Deterministic) {
  const auto r1 = run_supernode_experiment(quick(12));
  const auto r2 = run_supernode_experiment(quick(12));
  EXPECT_DOUBLE_EQ(r1.satisfied_fraction, r2.satisfied_fraction);
  EXPECT_EQ(r1.packets_submitted, r2.packets_submitted);
  EXPECT_EQ(r1.packets_dropped, r2.packets_dropped);
}

TEST(SupernodeExperiment, SeedMatters) {
  const auto r1 = run_supernode_experiment(quick(12, 1));
  const auto r2 = run_supernode_experiment(quick(12, 2));
  EXPECT_NE(r1.mean_response_latency_ms, r2.mean_response_latency_ms);
}

TEST(SupernodeExperiment, RenderStageUnboundedMatchesDisabled) {
  // A huge GPU behaves like the paper's "rendering is cheap" assumption.
  auto off = quick(10);
  auto on = quick(10);
  on.render_capacity_mpx_per_s = 1e9;
  const auto r_off = run_supernode_experiment(off);
  const auto r_on = run_supernode_experiment(on);
  EXPECT_NEAR(r_on.satisfied_fraction, r_off.satisfied_fraction, 0.1);
  EXPECT_NEAR(r_on.mean_response_latency_ms, r_off.mean_response_latency_ms,
              5.0);
}

TEST(SupernodeExperiment, RenderStarvationCollapsesQoE) {
  auto c = quick(20);
  c.render_capacity_mpx_per_s = 150.0;  // well under the ~260 Mpx/s demand
  const auto r = run_supernode_experiment(c);
  EXPECT_LT(r.satisfied_fraction, 0.2);
  EXPECT_GT(r.mean_response_latency_ms, 100.0);
}

TEST(SupernodeExperiment, AdaptationRelievesRenderStarvation) {
  // Lower levels encode fewer pixels, so the adaptation also sheds GPU
  // load — unlike pure jitter, render starvation IS visible to Eq (7).
  // Seed-sensitive: the controller must shed enough pixel load to clear the
  // knee; seed 17 converges (the 3-seed bench average sits at ~0.6).
  auto base = quick(20, /*seed=*/17);
  base.render_capacity_mpx_per_s = 200.0;
  base.duration_ms = 16'000.0;
  auto adapt = base;
  adapt.adaptation = true;
  const auto rb = run_supernode_experiment(base);
  const auto ra = run_supernode_experiment(adapt);
  EXPECT_GT(ra.satisfied_fraction, rb.satisfied_fraction);
}

TEST(SupernodeExperiment, RejectsBadConfig) {
  auto c = quick(0);
  EXPECT_THROW(run_supernode_experiment(c), std::logic_error);
  auto c2 = quick(5);
  c2.uplink_kbps = 0.0;
  EXPECT_THROW(run_supernode_experiment(c2), std::logic_error);
}

}  // namespace
}  // namespace cloudfog::systems
