#include "systems/reputation_experiment.h"

#include <gtest/gtest.h>

namespace cloudfog::systems {
namespace {

ReputationExperimentConfig base() {
  ReputationExperimentConfig c;
  c.num_supernodes = 40;
  c.malicious_fraction = 0.2;
  c.rounds = 300;
  return c;
}

TEST(ReputationExperiment, DetectsMostSaboteurs) {
  const auto r = run_reputation_experiment(base());
  EXPECT_EQ(r.malicious, 8u);
  EXPECT_GE(r.recall(), 0.8);
  EXPECT_GE(r.precision(), 0.9);
  EXPECT_GT(r.rounds_to_first_detection, 0u);
  EXPECT_LT(r.rounds_to_first_detection, 100u);
}

TEST(ReputationExperiment, EvictionRepairsDeliveryRate) {
  const auto r = run_reputation_experiment(base());
  // Early window: elevated by saboteurs (though fast evictions already bite
  // within it). Late window: saboteurs replaced by honest machines, so the
  // rate approaches the 3% honest background.
  EXPECT_GT(r.early_bad_rate, 0.035);
  EXPECT_LT(r.late_bad_rate, r.early_bad_rate);
  EXPECT_LT(r.late_bad_rate, 0.04);
}

TEST(ReputationExperiment, WithoutEvictionBadRatePersists) {
  auto c = base();
  c.enable_eviction = false;
  const auto r = run_reputation_experiment(c);
  EXPECT_EQ(r.evicted_total, 0u);
  EXPECT_NEAR(r.late_bad_rate, r.early_bad_rate, 0.03);
}

TEST(ReputationExperiment, NoMaliciousNodesNoEvictions) {
  auto c = base();
  c.malicious_fraction = 0.0;
  const auto r = run_reputation_experiment(c);
  EXPECT_EQ(r.malicious, 0u);
  EXPECT_EQ(r.false_positives, 0u);
  EXPECT_DOUBLE_EQ(r.recall(), 1.0);
}

TEST(ReputationExperiment, SubtleSaboteursTakeLonger) {
  auto blatant = base();
  blatant.sabotage_rate = 0.6;
  auto subtle = base();
  subtle.sabotage_rate = 0.2;
  const auto r_blatant = run_reputation_experiment(blatant);
  const auto r_subtle = run_reputation_experiment(subtle);
  ASSERT_GT(r_blatant.rounds_to_first_detection, 0u);
  if (r_subtle.rounds_to_first_detection > 0) {
    EXPECT_GE(r_subtle.rounds_to_first_detection,
              r_blatant.rounds_to_first_detection);
  }
}

TEST(ReputationExperiment, Deterministic) {
  const auto r1 = run_reputation_experiment(base());
  const auto r2 = run_reputation_experiment(base());
  EXPECT_EQ(r1.evicted_total, r2.evicted_total);
  EXPECT_DOUBLE_EQ(r1.late_bad_rate, r2.late_bad_rate);
}

TEST(ReputationExperiment, RejectsBadConfig) {
  auto c = base();
  c.rounds = 5;
  EXPECT_THROW(run_reputation_experiment(c), std::logic_error);
  auto c2 = base();
  c2.malicious_fraction = 1.5;
  EXPECT_THROW(run_reputation_experiment(c2), std::logic_error);
}

}  // namespace
}  // namespace cloudfog::systems
