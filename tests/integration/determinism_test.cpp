// Determinism regression: the whole reproduction rests on runs being a pure
// function of (scenario, options, seed). This test runs the full streaming
// pipeline twice with identical inputs and asserts the QoE results are
// bit-identical — not approximately equal: any drift (hash-order iteration,
// uninitialised reads, FP reassociation behind a flag change) must fail
// loudly here before it silently skews a figure.
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/session_manager.h"
#include "exec/run_executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "systems/streaming_sim.h"
#include "util/rng.h"

namespace cloudfog::systems {
namespace {

const Scenario& small_scenario() {
  static const Scenario scenario = [] {
    ScenarioParams p = ScenarioParams::simulation_defaults(7);
    p.num_players = 400;
    p.num_supernodes = 40;
    p.dc_uplink_kbps = 1'250'000.0 * 400.0 / 10'000.0;
    return Scenario::build(p);
  }();
  return scenario;
}

StreamingOptions quick_options() {
  StreamingOptions o;
  o.num_players = 200;
  o.warmup_ms = 1'000.0;
  o.duration_ms = 3'000.0;
  o.drain_ms = 500.0;
  return o;
}

/// FNV-1a over the exact bit patterns of every field of a StreamingResult —
/// the "QoE digest". Two runs agree iff every metric is bit-identical.
std::uint64_t qoe_digest(const StreamingResult& r) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xffu;
      h *= 0x100000001b3ull;
    }
  };
  const auto mix_double = [&mix](double d) {
    mix(std::bit_cast<std::uint64_t>(d));
  };
  mix_double(r.mean_response_latency_ms);
  mix_double(r.p95_response_latency_ms);
  mix_double(r.mean_continuity);
  mix_double(r.satisfied_fraction);
  mix_double(r.cloud_uplink_mbps);
  mix_double(r.mean_quality_level);
  mix(r.segments_generated);
  mix(r.packets_dropped);
  mix(r.supernode_supported);
  mix(r.edge_supported);
  for (std::size_t g = 0; g < r.players_by_game.size(); ++g) {
    mix(r.players_by_game[g]);
    mix_double(r.continuity_by_game[g]);
    mix_double(r.satisfied_by_game[g]);
  }
  return h;
}

class DeterminismTest : public ::testing::TestWithParam<SystemKind> {};

TEST_P(DeterminismTest, SameSeedSameDigest) {
  const auto first = run_streaming(GetParam(), small_scenario(), quick_options());
  const auto second = run_streaming(GetParam(), small_scenario(), quick_options());
  EXPECT_EQ(qoe_digest(first), qoe_digest(second))
      << "same (scenario, options, seed) produced diverging QoE metrics";
  // Pin a few fields individually so a digest mismatch is debuggable.
  EXPECT_EQ(first.segments_generated, second.segments_generated);
  EXPECT_EQ(first.packets_dropped, second.packets_dropped);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(first.mean_response_latency_ms),
            std::bit_cast<std::uint64_t>(second.mean_response_latency_ms));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(first.mean_continuity),
            std::bit_cast<std::uint64_t>(second.mean_continuity));
}

TEST_P(DeterminismTest, SeedSaltPerturbsTheRun) {
  // The converse guard: seed_salt exists to decorrelate repeat runs, so a
  // different salt must actually change the outcome (a digest that never
  // moves would mean the metrics ignore the stochastic inputs entirely).
  StreamingOptions salted = quick_options();
  salted.seed_salt = 1;
  const auto base = run_streaming(GetParam(), small_scenario(), quick_options());
  const auto other = run_streaming(GetParam(), small_scenario(), salted);
  EXPECT_NE(qoe_digest(base), qoe_digest(other));
}

TEST_P(DeterminismTest, ObservabilityHasNoObserverEffect) {
  // The obs subsystem's core contract (DESIGN.md §7): metrics, tracing and
  // the periodic sim-time sampler are pure sinks, so running with full
  // collection installed must produce a bit-identical QoE digest to running
  // with collection off. This is what lets benches collect artifacts
  // without invalidating the figures they reproduce.
  const auto plain =
      run_streaming(GetParam(), small_scenario(), quick_options());

  obs::MetricsRegistry registry;
  obs::TraceRecorder recorder;
  StreamingResult observed = [&] {
    obs::ScopedRegistry install_registry(registry);
    obs::ScopedTracer install_tracer(recorder);
    return run_streaming(GetParam(), small_scenario(), quick_options());
  }();

  EXPECT_EQ(qoe_digest(plain), qoe_digest(observed))
      << "installing the metrics registry / tracer perturbed the simulation";
  // And collection actually happened — this wasn't a vacuous comparison.
  const obs::Counter* executed = registry.find_counter("sim.events.executed");
  ASSERT_NE(executed, nullptr);
  EXPECT_GT(executed->value(), 0u);
  EXPECT_GT(recorder.event_count(), 0u);
}

TEST(ParallelDeterminismTest, JobsOneAndJobsEightProduceIdenticalDigests) {
  // The executor's headline guarantee, checked on a real fig5-style fast
  // sweep: fanning the (system × seed) grid across 8 workers must return
  // bit-identical QoE digests to the sequential path, run for run. The
  // parallel leg also runs with a registry installed so the per-run
  // registry scoping + post-barrier merge path is exercised, not skipped.
  std::vector<StreamingRunSpec> specs;
  for (SystemKind kind : {SystemKind::kCloud, SystemKind::kEdgeCloud,
                          SystemKind::kCloudFogB, SystemKind::kCloudFogA}) {
    for (unsigned seed : {7u, 11u}) {
      StreamingRunSpec spec;
      spec.kind = kind;
      ScenarioParams p = ScenarioParams::simulation_defaults(seed);
      p.num_players = 400;
      p.num_supernodes = 40;
      p.dc_uplink_kbps = 1'250'000.0 * 400.0 / 10'000.0;
      spec.scenario = p;
      spec.options = quick_options();
      specs.push_back(spec);
    }
  }

  exec::RunExecutor sequential(1);
  const std::vector<StreamingResult> seq =
      run_streaming_batch(specs, sequential);

  obs::MetricsRegistry registry;
  const std::vector<StreamingResult> par = [&] {
    obs::ScopedRegistry install(registry);
    exec::RunExecutor parallel(8);
    return run_streaming_batch(specs, parallel);
  }();

  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(qoe_digest(seq[i]), qoe_digest(par[i]))
        << "run " << i << " diverged between --jobs=1 and --jobs=8";
  }
  // The merge actually delivered the workers' metrics to the caller.
  const obs::Counter* executed = registry.find_counter("sim.events.executed");
  ASSERT_NE(executed, nullptr);
  EXPECT_GT(executed->value(), 0u);
}

/// FNV-1a over every instrument of a registry, insertion-ordered: names,
/// counter values, gauge value/peak bit patterns, histogram count + sum bit
/// patterns — the "obs digest". Everything the _HOT cached instruments
/// write is folded in, so a nondeterministic hot-path metric (a cache
/// resolving against a stale registry, a lost single-writer increment)
/// breaks the digest even when the QoE digest is clean.
std::uint64_t obs_digest(const obs::MetricsRegistry& registry) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix_byte = [&h](std::uint8_t b) {
    h ^= b;
    h *= 0x100000001b3ull;
  };
  const auto mix = [&mix_byte](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      mix_byte((v >> (byte * 8)) & 0xffu);
    }
  };
  registry.for_each([&](const std::string& name, const obs::Counter* c,
                        const obs::Gauge* g, const obs::Histogram* hist) {
    for (const char ch : name) mix_byte(static_cast<std::uint8_t>(ch));
    if (c != nullptr) mix(c->value());
    if (g != nullptr) {
      mix(std::bit_cast<std::uint64_t>(g->value()));
      mix(std::bit_cast<std::uint64_t>(g->max()));
    }
    if (hist != nullptr) {
      mix(hist->count());
      mix(std::bit_cast<std::uint64_t>(hist->sum()));
    }
  });
  return h;
}

TEST(HotStateObsDigestTest, HotInstrumentsAreDeterministicAndPresent) {
  // The slab/memo hot-path instruments (CF_OBS_*_HOT: per-callsite cached,
  // single-writer) must be as deterministic as the QoE metrics they ride
  // along with: two identical session-churn runs, each under a fresh
  // registry, must produce bit-identical obs digests, and the digest must
  // actually cover the hot-state instruments DESIGN.md §12 names.
  const auto run_churn = [](obs::MetricsRegistry& registry) {
    obs::ScopedRegistry install(registry);
    // A fresh world per run: the latency model's pair memo warms up inside
    // a topology, and its hit/miss counters are part of the digest — a
    // shared scenario would (correctly) report more hits on the second run.
    ScenarioParams params = ScenarioParams::simulation_defaults(7);
    params.num_players = 400;
    params.num_supernodes = 40;
    const Scenario scenario = Scenario::build(params);
    core::SessionManager mgr(scenario.topology(),
                             core::SupernodeManagerConfig{},
                             core::SessionManagerConfig{}, util::Rng(17));
    util::Rng churn(99);
    std::vector<NodeId> supernodes, joined;
    for (const std::size_t pop : scenario.supernode_players()) {
      const NodeId sn = scenario.player_host(pop);
      mgr.supernode_join(sn, scenario.supernode_capacity(pop),
                         scenario.supernode_uplink_kbps(pop));
      supernodes.push_back(sn);
    }
    for (std::size_t pop = 0; joined.size() < 200; ++pop) {
      if (scenario.is_supernode_player(pop)) continue;
      const NodeId p = scenario.player_host(pop);
      mgr.player_join(p, scenario.player_game(pop));
      joined.push_back(p);
    }
    // Churn: leaves + rejoins recycle slots (slot_reuse), a supernode
    // departure drives failover, both demand ledgers stay live.
    for (int i = 0; i < 100; ++i) {
      const std::size_t at = churn.index(joined.size());
      const NodeId p = joined[at];
      mgr.player_leave(p);
      mgr.player_join(p, static_cast<game::GameId>(churn.uniform_int(0, 4)));
    }
    (void)mgr.supernode_leave(supernodes[churn.index(supernodes.size())]);
  };

  obs::MetricsRegistry first, second;
  run_churn(first);
  run_churn(second);
  EXPECT_EQ(obs_digest(first), obs_digest(second))
      << "hot-path instruments diverged between identical runs";

  // Coverage guard: the digest is only meaningful if the hot instruments
  // were really collected.
  for (const char* counter : {"core.session.slot_reuse",
                              "net.latency.pair_memo.misses",
                              "core.supernode.assignments"}) {
    const obs::Counter* c = first.find_counter(counter);
    ASSERT_NE(c, nullptr) << counter;
    EXPECT_GT(c->value(), 0u) << counter;
  }
  for (const char* gauge : {"core.session.slots_live",
                            "core.session.handle_load_factor"}) {
    const obs::Gauge* g = first.find_gauge(gauge);
    ASSERT_NE(g, nullptr) << gauge;
    EXPECT_TRUE(g->ever_set()) << gauge;
    EXPECT_GT(g->max(), 0.0) << gauge;
  }
  ASSERT_NE(first.find_counter("net.latency.pair_memo.hits"), nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, DeterminismTest,
    ::testing::Values(SystemKind::kCloud, SystemKind::kEdgeCloud,
                      SystemKind::kCloudFogB, SystemKind::kCloudFogA),
    [](const ::testing::TestParamInfo<SystemKind>& param_info) {
      switch (param_info.param) {
        case SystemKind::kCloud: return "Cloud";
        case SystemKind::kEdgeCloud: return "EdgeCloud";
        case SystemKind::kCloudFogB: return "CloudFogB";
        case SystemKind::kCloudFogA: return "CloudFogA";
        default: return "Other";
      }
    });

}  // namespace
}  // namespace cloudfog::systems
