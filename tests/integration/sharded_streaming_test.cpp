// The sharded engine's central promise: one run, many cores, one digest.
// The single-shard sharded run (sim_force_sharded, K = 1) is the oracle;
// every multi-shard and multi-worker digest must be bit-identical to it —
// per seed, per system kind, with the cache/coop subsystem on, and under
// supernode churn. EXPECT_EQ on doubles is deliberate: the contract is
// exact equality, not tolerance.
#include "systems/streaming_sim.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace cloudfog::systems {
namespace {

ScenarioParams small_params(std::uint64_t seed, std::size_t shards) {
  ScenarioParams p = ScenarioParams::simulation_defaults(seed);
  p.num_players = 500;
  p.num_supernodes = 60;
  // Scale DC provisioning to the reduced population (same per-player
  // strain as the full-size experiments).
  p.dc_uplink_kbps = 1'250'000.0 * 500.0 / 10'000.0;
  p.sim_shards = shards;
  p.sim_force_sharded = true;  // K = 1 is the oracle, same engine
  return p;
}

StreamingOptions fast_options(std::size_t players = 250) {
  StreamingOptions o;
  o.num_players = players;
  o.warmup_ms = 500.0;
  o.duration_ms = 2'000.0;
  o.drain_ms = 500.0;
  return o;
}

/// Every digest-bearing field of a StreamingResult, flattened for exact
/// comparison.
std::vector<double> digest(const StreamingResult& r) {
  std::vector<double> d = {r.mean_response_latency_ms,
                           r.p95_response_latency_ms,
                           r.mean_continuity,
                           r.satisfied_fraction,
                           r.cloud_uplink_mbps,
                           r.mean_quality_level,
                           static_cast<double>(r.segments_generated),
                           static_cast<double>(r.packets_dropped),
                           static_cast<double>(r.supernode_supported),
                           static_cast<double>(r.edge_supported),
                           static_cast<double>(r.cache.hits),
                           static_cast<double>(r.cache.misses),
                           static_cast<double>(r.cache.transcodes),
                           static_cast<double>(r.cache.evictions),
                           static_cast<double>(r.cache.cancelled_jobs),
                           static_cast<double>(r.cache.coop_probes),
                           static_cast<double>(r.cache.coop_hits),
                           r.cache.bytes_edge_kbit,
                           r.cache.bytes_cloud_kbit,
                           r.cache.bytes_peer_kbit};
  for (std::size_t g = 0; g < 5; ++g) {
    d.push_back(static_cast<double>(r.players_by_game[g]));
    d.push_back(r.continuity_by_game[g]);
    d.push_back(r.satisfied_by_game[g]);
  }
  return d;
}

StreamingResult run_at(SystemKind kind, std::uint64_t seed, std::size_t shards,
                       const StreamingOptions& options) {
  const Scenario scenario = Scenario::build(small_params(seed, shards));
  return run_streaming(kind, scenario, options);
}

TEST(ShardedStreaming, DigestMatchesOracleAcrossSeedsAndShardCounts) {
  const StreamingOptions options = fast_options();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const StreamingResult oracle =
        run_at(SystemKind::kCloudFogB, seed, 1, options);
    EXPECT_GT(oracle.segments_generated, 1'000u);
    EXPECT_GT(oracle.supernode_supported, 0u);
    for (std::size_t shards : {2u, 4u, 8u}) {
      const StreamingResult r =
          run_at(SystemKind::kCloudFogB, seed, shards, options);
      EXPECT_EQ(digest(r), digest(oracle))
          << "seed " << seed << " shards " << shards;
    }
  }
}

TEST(ShardedStreaming, DigestInvariantInWorkerCount) {
  StreamingOptions options = fast_options();
  options.shard_workers = 1;
  const StreamingResult one = run_at(SystemKind::kCloudFogB, 3, 4, options);
  options.shard_workers = 3;
  const StreamingResult three = run_at(SystemKind::kCloudFogB, 3, 4, options);
  EXPECT_EQ(digest(one), digest(three));
}

TEST(ShardedStreaming, RepeatedRunsAreBitIdentical) {
  const StreamingOptions options = fast_options();
  const StreamingResult a = run_at(SystemKind::kCloudFogB, 7, 4, options);
  const StreamingResult b = run_at(SystemKind::kCloudFogB, 7, 4, options);
  EXPECT_EQ(digest(a), digest(b));
}

TEST(ShardedStreaming, CacheAndCoopDigestInvariant) {
  // Cooperative cross-supernode lookups are the only cross-shard message
  // edges, so this configuration exercises the conservative windows for
  // real (finite lookahead, probe/response traffic through the inboxes).
  const StreamingOptions options = fast_options();
  auto with_coop = [&](std::uint64_t seed, std::size_t shards) {
    ScenarioParams p = small_params(seed, shards);
    p.use_segment_cache = true;
    p.cache_coop_neighbors = 2;
    const Scenario scenario = Scenario::build(p);
    return run_streaming(SystemKind::kCloudFogAdapt, scenario, options);
  };
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const StreamingResult oracle = with_coop(seed, 1);
    EXPECT_GT(oracle.cache.hits + oracle.cache.misses, 0u);
    EXPECT_GT(oracle.cache.coop_probes, 0u);
    for (std::size_t shards : {2u, 4u, 8u}) {
      EXPECT_EQ(digest(with_coop(seed, shards)), digest(oracle))
          << "seed " << seed << " shards " << shards;
    }
  }
}

TEST(ShardedStreaming, SchedulingKindDigestInvariant) {
  const StreamingOptions options = fast_options();
  const StreamingResult oracle =
      run_at(SystemKind::kCloudFogA, 5, 1, options);
  for (std::size_t shards : {2u, 4u, 8u}) {
    EXPECT_EQ(digest(run_at(SystemKind::kCloudFogA, 5, shards, options)),
              digest(oracle))
        << "shards " << shards;
  }
}

StreamingOptions churn_options(const Scenario& scenario) {
  StreamingOptions o = fast_options();
  // Every supernode leaves mid-window and returns before the drain; the
  // engine ignores events for supernodes that serve nobody in this plan.
  for (std::size_t sn : scenario.supernode_players()) {
    o.supernode_churn.push_back({900.0, sn, true});
    o.supernode_churn.push_back({1'800.0, sn, false});
  }
  return o;
}

TEST(ShardedStreaming, ChurnDigestInvariantAcrossShardCounts) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Scenario oracle_scenario = Scenario::build(small_params(seed, 1));
    const StreamingResult oracle = run_streaming(
        SystemKind::kCloudFogB, oracle_scenario, churn_options(oracle_scenario));
    for (std::size_t shards : {2u, 4u, 8u}) {
      const Scenario scenario = Scenario::build(small_params(seed, shards));
      const StreamingResult r = run_streaming(SystemKind::kCloudFogB, scenario,
                                              churn_options(scenario));
      EXPECT_EQ(digest(r), digest(oracle))
          << "seed " << seed << " shards " << shards;
    }
  }
}

TEST(ShardedStreaming, ChurnFailsPlayersOverToTheCloud) {
  // While every supernode is down its players stream from their home DC,
  // so measured cloud egress must strictly exceed the no-churn run.
  const Scenario scenario = Scenario::build(small_params(1, 4));
  const StreamingResult with_churn =
      run_streaming(SystemKind::kCloudFogB, scenario, churn_options(scenario));
  const StreamingResult without =
      run_streaming(SystemKind::kCloudFogB, scenario, fast_options());
  EXPECT_GT(with_churn.cloud_uplink_mbps, without.cloud_uplink_mbps);
  EXPECT_EQ(with_churn.segments_generated, without.segments_generated);
}

TEST(ShardedStreaming, ChurnRequiresShardedEngine) {
  ScenarioParams p = small_params(1, 1);
  p.sim_force_sharded = false;  // sequential dispatch path
  const Scenario scenario = Scenario::build(p);
  StreamingOptions o = fast_options();
  o.supernode_churn.push_back({900.0, scenario.supernode_players().front(), true});
  EXPECT_THROW(run_streaming(SystemKind::kCloudFogB, scenario, o),
               std::logic_error);
}

TEST(ShardedStreaming, ChurnWithSchedulingDigestInvariant) {
  // Churn is legal under the packet-level deadline scheduler (DESIGN.md
  // §14): a leave drains the departed sender's backlog into the failover
  // fluid queues. The drain runs in the departed supernode's own shard and
  // samples only per-player RNG streams, so the digest must stay invariant
  // in the shard count — the same oracle contract as the fluid kinds.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Scenario oracle_scenario = Scenario::build(small_params(seed, 1));
    const StreamingResult oracle = run_streaming(
        SystemKind::kCloudFogA, oracle_scenario, churn_options(oracle_scenario));
    EXPECT_GT(oracle.segments_generated, 1'000u);
    for (std::size_t shards : {2u, 4u, 8u}) {
      const Scenario scenario = Scenario::build(small_params(seed, shards));
      const StreamingResult r = run_streaming(SystemKind::kCloudFogA, scenario,
                                              churn_options(scenario));
      EXPECT_EQ(digest(r), digest(oracle))
          << "seed " << seed << " shards " << shards;
    }
  }
}

TEST(ShardedStreaming, ChurnWithSchedulingFailsOverToTheCloud) {
  // While every supernode is down its players (and the drained remainders
  // of their queued segments) stream from the home DC, so measured cloud
  // egress must strictly exceed the no-churn run, with no segment lost.
  const Scenario scenario = Scenario::build(small_params(1, 4));
  const StreamingResult with_churn =
      run_streaming(SystemKind::kCloudFogA, scenario, churn_options(scenario));
  const StreamingResult without =
      run_streaming(SystemKind::kCloudFogA, scenario, fast_options());
  EXPECT_GT(with_churn.cloud_uplink_mbps, without.cloud_uplink_mbps);
  EXPECT_EQ(with_churn.segments_generated, without.segments_generated);
}

TEST(ShardedStreaming, ChurnEventsMustAlternate) {
  const Scenario scenario = Scenario::build(small_params(1, 2));
  StreamingOptions o = fast_options();
  // Two leaves with no join in between — invalid for any supernode that
  // serves players (events for non-serving ones are inert, so script the
  // whole fleet to be sure at least one serving node trips the check).
  for (std::size_t sn : scenario.supernode_players()) {
    o.supernode_churn.push_back({800.0, sn, true});
    o.supernode_churn.push_back({900.0, sn, true});
  }
  EXPECT_THROW(run_streaming(SystemKind::kCloudFogB, scenario, o),
               std::logic_error);
}

}  // namespace
}  // namespace cloudfog::systems
