// Integration tests of the dynamic session simulation (player churn +
// supernode departures through the SessionManager).
#include "systems/dynamic_sim.h"

#include <gtest/gtest.h>

namespace cloudfog::systems {
namespace {

const Scenario& world() {
  static const Scenario scenario = [] {
    ScenarioParams p = ScenarioParams::simulation_defaults(11);
    p.num_players = 1'500;
    p.num_supernodes = 100;
    return Scenario::build(p);
  }();
  return scenario;
}

DynamicSimOptions quick() {
  DynamicSimOptions o;
  o.duration_ms = 2.0 * kMsPerHour;
  o.supernode_mtbf_hours = 2.0;  // aggressive churn so departures happen
  o.supernode_downtime_ms = 10.0 * kMsPerMinute;
  return o;
}

TEST(DynamicSim, RunsAndReportsActivity) {
  const auto r = run_dynamic_sim(world(), quick());
  EXPECT_GT(r.player_joins, 50u);
  EXPECT_GT(r.supernode_departures, 30u);
  EXPECT_GT(r.disruptions, 0u);
  EXPECT_GT(r.mean_supernode_session_fraction, 0.3);
  EXPECT_LE(r.mean_supernode_session_fraction, 1.0);
  EXPECT_GT(r.mean_stream_delay_ms, 1.0);
  EXPECT_LT(r.mean_stream_delay_ms, 120.0);
}

TEST(DynamicSim, AccountingIsConsistent) {
  const auto r = run_dynamic_sim(world(), quick());
  EXPECT_EQ(r.disruptions,
            r.recovered_to_backup + r.reassigned + r.fell_to_cloud);
}

TEST(DynamicSim, FailoverKeepsMorePlayersOnFog) {
  auto with = quick();
  auto without = quick();
  without.enable_failover = false;
  const auto r_with = run_dynamic_sim(world(), with);
  const auto r_without = run_dynamic_sim(world(), without);
  EXPECT_GT(r_with.recovered_to_backup, 0u);
  EXPECT_EQ(r_without.recovered_to_backup, 0u);
  // Both configurations recover through some path; failover must not be
  // worse at keeping players on the fog.
  EXPECT_GE(r_with.recovery_rate() + 0.05, r_without.recovery_rate());
}

TEST(DynamicSim, CooperationMovesPlayersUnderPressure) {
  auto o = quick();
  o.enable_cooperation = true;
  const auto r = run_dynamic_sim(world(), o);
  // With 100 supernodes serving ~280 online players, some run hot; the
  // rebalancer must act at least occasionally over two hours.
  EXPECT_GT(r.rebalance_moves, 0u);
}

TEST(DynamicSim, CooperationReducesHotSupernodes) {
  auto base = quick();
  auto coop = quick();
  coop.enable_cooperation = true;
  const auto r_base = run_dynamic_sim(world(), base);
  const auto r_coop = run_dynamic_sim(world(), coop);
  EXPECT_LE(r_coop.mean_hot_supernode_fraction,
            r_base.mean_hot_supernode_fraction + 0.02);
}

TEST(DynamicSim, Deterministic) {
  const auto r1 = run_dynamic_sim(world(), quick());
  const auto r2 = run_dynamic_sim(world(), quick());
  EXPECT_EQ(r1.player_joins, r2.player_joins);
  EXPECT_EQ(r1.disruptions, r2.disruptions);
  EXPECT_DOUBLE_EQ(r1.mean_stream_delay_ms, r2.mean_stream_delay_ms);
}

TEST(DynamicSim, SeedSaltChangesOutcome) {
  auto o2 = quick();
  o2.seed_salt = 5;
  const auto r1 = run_dynamic_sim(world(), quick());
  const auto r2 = run_dynamic_sim(world(), o2);
  EXPECT_NE(r1.supernode_departures, r2.supernode_departures);
}

TEST(DynamicSim, RejectsBadOptions) {
  DynamicSimOptions o;
  o.duration_ms = 0.0;
  EXPECT_THROW(run_dynamic_sim(world(), o), std::logic_error);
  DynamicSimOptions o2;
  o2.supernode_mtbf_hours = 0.0;
  EXPECT_THROW(run_dynamic_sim(world(), o2), std::logic_error);
}

}  // namespace
}  // namespace cloudfog::systems
