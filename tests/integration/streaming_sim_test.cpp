// Integration tests of the full streaming pipeline (paper Figures 8 and 9).
// These runs use reduced populations and windows so the suite stays fast,
// but exercise every moving part: assignment, senders, WAN caps, the
// adaptation loop and the deadline scheduler.
#include "systems/streaming_sim.h"

#include <gtest/gtest.h>

namespace cloudfog::systems {
namespace {

const Scenario& shared_scenario() {
  static const Scenario scenario = [] {
    ScenarioParams p = ScenarioParams::simulation_defaults(1);
    p.num_players = 1'500;
    p.num_supernodes = 100;
    // Scale datacenter provisioning to the reduced population so the cloud
    // is under the same per-player strain as the full-size experiments.
    p.dc_uplink_kbps = 1'250'000.0 * 1'500.0 / 10'000.0;
    return Scenario::build(p);
  }();
  return scenario;
}

StreamingOptions quick_options(std::size_t players = 600) {
  StreamingOptions o;
  o.num_players = players;
  o.warmup_ms = 1'500.0;
  o.duration_ms = 5'000.0;
  o.drain_ms = 1'000.0;
  return o;
}

TEST(StreamingSim, ResultsAreSane) {
  const auto r = run_streaming(SystemKind::kCloud, shared_scenario(),
                               quick_options());
  EXPECT_GT(r.segments_generated, 1'000u);
  EXPECT_GT(r.mean_response_latency_ms, 10.0);
  EXPECT_LT(r.mean_response_latency_ms, 5'000.0);
  EXPECT_GE(r.mean_continuity, 0.0);
  EXPECT_LE(r.mean_continuity, 1.0);
  EXPECT_GE(r.satisfied_fraction, 0.0);
  EXPECT_LE(r.satisfied_fraction, 1.0);
  EXPECT_GT(r.cloud_uplink_mbps, 0.0);
  EXPECT_EQ(r.packets_dropped, 0u);  // Cloud never schedules drops
  EXPECT_EQ(r.supernode_supported, 0u);
}

TEST(StreamingSim, P95AboveMean) {
  const auto r = run_streaming(SystemKind::kCloud, shared_scenario(),
                               quick_options());
  EXPECT_GE(r.p95_response_latency_ms, r.mean_response_latency_ms);
}

TEST(StreamingSim, CloudFogOffloadsCloudTraffic) {
  const auto cloud = run_streaming(SystemKind::kCloud, shared_scenario(),
                                   quick_options());
  const auto fog = run_streaming(SystemKind::kCloudFogB, shared_scenario(),
                                 quick_options());
  EXPECT_GT(fog.supernode_supported, 100u);
  EXPECT_LT(fog.cloud_uplink_mbps, cloud.cloud_uplink_mbps * 0.7);
}

TEST(StreamingSim, EdgeCloudUsesEdges) {
  const auto r = run_streaming(SystemKind::kEdgeCloud, shared_scenario(),
                               quick_options());
  EXPECT_GT(r.edge_supported, 0u);
  EXPECT_EQ(r.packets_dropped, 0u);
}

TEST(StreamingSim, QoeOrderingUnderLoad) {
  // The paper's headline result at a loaded operating point: CloudFog/B
  // beats Cloud on both latency and continuity.
  const auto options = quick_options(1'200);
  const auto cloud =
      run_streaming(SystemKind::kCloud, shared_scenario(), options);
  const auto fog =
      run_streaming(SystemKind::kCloudFogB, shared_scenario(), options);
  EXPECT_LT(fog.mean_response_latency_ms, cloud.mean_response_latency_ms);
  EXPECT_GT(fog.mean_continuity, cloud.mean_continuity);
}

TEST(StreamingSim, AdaptationLowersQualityUnderStrain) {
  const auto options = quick_options(1'200);
  const auto b =
      run_streaming(SystemKind::kCloudFogB, shared_scenario(), options);
  const auto adapt =
      run_streaming(SystemKind::kCloudFogAdapt, shared_scenario(), options);
  EXPECT_LT(adapt.mean_quality_level, b.mean_quality_level);
}

TEST(StreamingSim, SchedulingVariantDrivesDeadlineScheduler) {
  const auto r = run_streaming(SystemKind::kCloudFogSchedule, shared_scenario(),
                               quick_options(1'200));
  EXPECT_GT(r.supernode_supported, 0u);
  // Scheduler active: segments flow through the packet-level path; drops
  // may or may not trigger depending on load, but the run must complete
  // with sane metrics.
  EXPECT_GT(r.mean_continuity, 0.0);
}

TEST(StreamingSim, CloudFogAImprovesOnB) {
  const auto options = quick_options(1'200);
  const auto b =
      run_streaming(SystemKind::kCloudFogB, shared_scenario(), options);
  const auto a =
      run_streaming(SystemKind::kCloudFogA, shared_scenario(), options);
  EXPECT_LE(a.mean_response_latency_ms, b.mean_response_latency_ms * 1.05);
  EXPECT_GE(a.mean_continuity, b.mean_continuity * 0.95);
}

TEST(StreamingSim, DeterministicForSameOptions) {
  const auto r1 = run_streaming(SystemKind::kCloudFogB, shared_scenario(),
                                quick_options());
  const auto r2 = run_streaming(SystemKind::kCloudFogB, shared_scenario(),
                                quick_options());
  EXPECT_DOUBLE_EQ(r1.mean_response_latency_ms, r2.mean_response_latency_ms);
  EXPECT_DOUBLE_EQ(r1.mean_continuity, r2.mean_continuity);
  EXPECT_EQ(r1.segments_generated, r2.segments_generated);
}

TEST(StreamingSim, SeedSaltChangesOutcome) {
  auto o1 = quick_options();
  auto o2 = quick_options();
  o2.seed_salt = 99;
  const auto r1 = run_streaming(SystemKind::kCloud, shared_scenario(), o1);
  const auto r2 = run_streaming(SystemKind::kCloud, shared_scenario(), o2);
  EXPECT_NE(r1.mean_response_latency_ms, r2.mean_response_latency_ms);
}

TEST(StreamingSim, RejectsBadOptions) {
  StreamingOptions o;
  o.num_players = 0;
  EXPECT_THROW(run_streaming(SystemKind::kCloud, shared_scenario(), o),
               std::logic_error);
  StreamingOptions o2;
  o2.num_players = 1'000'000;  // more than the population
  EXPECT_THROW(run_streaming(SystemKind::kCloud, shared_scenario(), o2),
               std::logic_error);
}

}  // namespace
}  // namespace cloudfog::systems
