// BarrierPool and cross-shard plumbing under real concurrency. These run
// in CI's tsan job (ctest filter `obs|exec|shard`): the hammer tests exist
// to give the race detector dense interleavings over the pool's round
// machinery and the single-producer inbox lanes, not just to check
// results.
#include "shard/barrier_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "shard/cluster.h"
#include "shard/inbox.h"

namespace cloudfog::shard {
namespace {

TEST(BarrierPool, InlineWhenSingleWorker) {
  BarrierPool pool(1);
  EXPECT_EQ(pool.workers(), 1u);
  std::vector<std::size_t> seen;
  pool.run_round(5, [&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(BarrierPool, RunsEveryTaskExactlyOnce) {
  BarrierPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.run_round(64, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(BarrierPool, BarrierHoldsAcrossManyRounds) {
  // Every round writes into the same plain (unsynchronised) vector slots;
  // only the barrier makes that safe. 500 rounds give tsan interleavings.
  BarrierPool pool(4);
  std::vector<std::size_t> cells(8, 0);
  for (int round = 0; round < 500; ++round) {
    pool.run_round(cells.size(), [&](std::size_t i) { ++cells[i]; });
  }
  for (std::size_t c : cells) EXPECT_EQ(c, 500u);
}

TEST(BarrierPool, MoreTasksThanWorkers) {
  BarrierPool pool(3);
  std::atomic<int> total{0};
  pool.run_round(100, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 100);
}

TEST(BarrierPool, LowestIndexExceptionWins) {
  BarrierPool pool(4);
  try {
    pool.run_round(16, [&](std::size_t i) {
      if (i == 3 || i == 11) throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "expected the round to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 3");
  }
  // The pool survives a failed round.
  std::atomic<int> total{0};
  pool.run_round(8, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 8);
}

TEST(ShardHammer, InboxLanesUnderConcurrentRounds) {
  // Each round: every shard posts to every other shard from its own
  // worker (single producer per lane), then the coordinator drains —
  // the exact production pattern of the streaming engine's coop probes.
  const std::size_t kShards = 4;
  BarrierPool pool(kShards);
  InboxExchange inbox(kShards);
  std::size_t delivered = 0;
  for (int round = 0; round < 200; ++round) {
    pool.run_round(kShards, [&](std::size_t src) {
      for (std::size_t dst = 0; dst < kShards; ++dst) {
        if (dst == src) continue;
        inbox.post(src, dst, static_cast<TimeMs>(round), [] {});
      }
    });
    for (std::size_t dst = 0; dst < kShards; ++dst)
      delivered += inbox.drain(dst).size();
  }
  EXPECT_EQ(delivered, 200u * kShards * (kShards - 1));
}

TEST(ShardHammer, ClusterPingPongAtFullWidth) {
  // The whole stack under contention: 8 shards, 8 workers, dense windows,
  // every shard messaging two neighbors each window.
  const std::size_t kShards = 8;
  ShardCluster cluster(kShards, kShards);
  std::vector<std::size_t> received(kShards, 0);
  for (std::size_t s = 0; s < kShards; ++s) {
    cluster.sim(s).schedule_every(0.25, 1.0, [&cluster, &received, s, kShards] {
      const TimeMs now = cluster.sim(s).now();
      if (now >= 45.0) return;
      for (std::size_t hop = 1; hop <= 2; ++hop) {
        const std::size_t dst = (s + hop) % kShards;
        cluster.post(s, dst, now + 2.0,
                     [&received, dst] { ++received[dst]; });
      }
    });
  }
  cluster.run(50.0, 2.0);
  // 45 ticks per shard, 2 messages each, every arrival before the horizon.
  const std::size_t total =
      std::accumulate(received.begin(), received.end(), std::size_t{0});
  EXPECT_EQ(total, kShards * 45u * 2u);
}

}  // namespace
}  // namespace cloudfog::shard
