#include "shard/partition.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace cloudfog::shard {
namespace {

PartitionSite site(NodeId id, double lat, double lon, double weight = 1.0) {
  return PartitionSite{id, net::GeoPoint{lat, lon}, weight};
}

TEST(Partition, NoSitesYieldsOneShard) {
  const Partition p = partition_sites({}, 8);
  EXPECT_EQ(p.shard_count, 1u);
  EXPECT_TRUE(p.site_shard.empty());
}

TEST(Partition, NeverMoreShardsThanSites) {
  const std::vector<PartitionSite> sites = {site(1, 0.0, 0.0),
                                            site(2, 40.0, 100.0)};
  const Partition p = partition_sites(sites, 8);
  EXPECT_EQ(p.shard_count, 2u);
  EXPECT_NE(p.site_shard[0], p.site_shard[1]);
}

TEST(Partition, CoLocatedSitesCollapseToOneAnchor) {
  // Three sites but only two distinct positions: farthest-point sampling
  // must refuse a zero-distance anchor, so only two shards materialise.
  const std::vector<PartitionSite> sites = {
      site(1, 0.0, 0.0), site(2, 0.0, 0.0), site(3, 45.0, 90.0)};
  const Partition p = partition_sites(sites, 3);
  EXPECT_EQ(p.shard_count, 2u);
  EXPECT_EQ(p.site_shard[0], p.site_shard[1]);
  EXPECT_NE(p.site_shard[0], p.site_shard[2]);
}

TEST(Partition, HeaviestSiteAnchorsFirstShard) {
  const std::vector<PartitionSite> sites = {site(1, 0.0, 0.0, 1.0),
                                            site(2, 10.0, 10.0, 5.0),
                                            site(3, -40.0, 120.0, 2.0)};
  const Partition p = partition_sites(sites, 2);
  ASSERT_EQ(p.shard_count, 2u);
  // Shard 0's anchor is the heaviest site (index 1).
  EXPECT_EQ(p.anchor_site[0], 1u);
}

TEST(Partition, SitesJoinNearestAnchor) {
  // Two distant metros with satellites around each: every satellite lands
  // with its metro.
  const std::vector<PartitionSite> sites = {
      site(1, 0.0, 0.0, 10.0),   site(2, 1.0, 1.0),  site(3, -1.0, 0.5),
      site(4, 50.0, 120.0, 9.0), site(5, 49.0, 121.0)};
  const Partition p = partition_sites(sites, 2);
  ASSERT_EQ(p.shard_count, 2u);
  EXPECT_EQ(p.site_shard[1], p.site_shard[0]);
  EXPECT_EQ(p.site_shard[2], p.site_shard[0]);
  EXPECT_EQ(p.site_shard[4], p.site_shard[3]);
  EXPECT_NE(p.site_shard[0], p.site_shard[3]);
}

TEST(Partition, DeterministicUnderInputPermutation) {
  const std::vector<PartitionSite> a = {
      site(1, 0.0, 0.0, 3.0), site(2, 20.0, 40.0, 1.0),
      site(3, -30.0, 90.0, 2.0), site(4, 60.0, -120.0, 1.0)};
  std::vector<PartitionSite> b = {a[2], a[0], a[3], a[1]};
  const Partition pa = partition_sites(a, 3);
  const Partition pb = partition_sites(b, 3);
  ASSERT_EQ(pa.shard_count, pb.shard_count);
  // Compare by site id: the shard that holds an id must hold the same
  // co-members regardless of input order. Map each id to its anchor's id.
  std::map<NodeId, NodeId> anchor_of_a, anchor_of_b;
  for (std::size_t i = 0; i < a.size(); ++i)
    anchor_of_a[a[i].id] = a[pa.anchor_site[pa.site_shard[i]]].id;
  for (std::size_t i = 0; i < b.size(); ++i)
    anchor_of_b[b[i].id] = b[pb.anchor_site[pb.site_shard[i]]].id;
  EXPECT_EQ(anchor_of_a, anchor_of_b);
}

TEST(AnchorIndex, MapsPositionsToNearestAnchorShard) {
  const std::vector<PartitionSite> sites = {site(1, 0.0, 0.0, 2.0),
                                            site(2, 50.0, 120.0, 1.0)};
  const Partition p = partition_sites(sites, 2);
  ASSERT_EQ(p.shard_count, 2u);
  const AnchorIndex index(sites, p);
  EXPECT_EQ(index.shard_of(net::GeoPoint{2.0, 3.0}), p.site_shard[0]);
  EXPECT_EQ(index.shard_of(net::GeoPoint{48.0, 118.0}), p.site_shard[1]);
  // Exactly at an anchor.
  EXPECT_EQ(index.shard_of(net::GeoPoint{0.0, 0.0}), p.site_shard[0]);
}

}  // namespace
}  // namespace cloudfog::shard
