// Window-barrier semantics of the shard cluster: the conservative bound,
// the run_before edge case (events exactly at the bound belong to the next
// window), canonical inbox drain order, horizon drops and the degenerate
// lookaheads.
#include "shard/cluster.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "shard/inbox.h"
#include "sim/simulator.h"

namespace cloudfog::shard {
namespace {

constexpr TimeMs kInf = std::numeric_limits<double>::infinity();

TEST(EffectiveShardCount, PositiveLookaheadKeepsRequest) {
  EXPECT_EQ(effective_shard_count(4, 5.0), 4u);
  EXPECT_EQ(effective_shard_count(8, 0.001), 8u);
  EXPECT_EQ(effective_shard_count(4, kInf), 4u);
}

TEST(EffectiveShardCount, NonPositiveLookaheadCollapsesToOne) {
  EXPECT_EQ(effective_shard_count(4, 0.0), 1u);
  EXPECT_EQ(effective_shard_count(8, -3.0), 1u);
  EXPECT_EQ(effective_shard_count(1, 0.0), 1u);
}

TEST(SimulatorRunBefore, EventExactlyAtBoundWaitsForNextWindow) {
  // The window-barrier edge case the whole scheme rests on: run_before(b)
  // must NOT fire an event at exactly b (a cross-shard message may still
  // arrive at b), while run_until(b) must.
  sim::Simulator sim;
  int fired = 0;
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.run_before(10.0);
  EXPECT_EQ(fired, 0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
  sim.run_until(10.0);
  EXPECT_EQ(fired, 1);
}

TEST(InboxExchange, DrainsInCanonicalOrder) {
  InboxExchange inbox(3);
  std::vector<std::string> order;
  // Posted out of time order, from two sources, with a tie at t=5.
  inbox.post(2, 0, 7.0, [&] { order.push_back("t7 src2"); });
  inbox.post(1, 0, 5.0, [&] { order.push_back("t5 src1 first"); });
  inbox.post(2, 0, 5.0, [&] { order.push_back("t5 src2"); });
  inbox.post(1, 0, 5.0, [&] { order.push_back("t5 src1 second"); });
  inbox.post(1, 0, 3.0, [&] { order.push_back("t3 src1"); });
  auto msgs = inbox.drain(0);
  ASSERT_EQ(msgs.size(), 5u);
  for (auto& m : msgs) m.fn();
  EXPECT_EQ(order,
            (std::vector<std::string>{"t3 src1", "t5 src1 first",
                                      "t5 src1 second", "t5 src2", "t7 src2"}));
  // Drained lanes are empty.
  EXPECT_TRUE(inbox.drain(0).empty());
}

TEST(InboxExchange, RejectsSameShardPost) {
  InboxExchange inbox(2);
  EXPECT_THROW(inbox.post(1, 1, 0.0, [] {}), std::logic_error);
}

TEST(ShardCluster, InfiniteLookaheadRunsOneWindow) {
  ShardCluster cluster(2, 1);
  int fired = 0;
  cluster.sim(0).schedule_at(30.0, [&] { ++fired; });
  cluster.sim(1).schedule_at(99.0, [&] { ++fired; });
  cluster.run(100.0, kInf);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(cluster.sim(0).now(), 100.0);
  EXPECT_DOUBLE_EQ(cluster.sim(1).now(), 100.0);
}

TEST(ShardCluster, CrossShardMessagesArriveInWindowOrder) {
  // Ping-pong between two shards with lookahead 10: shard 0 fires at t,
  // posts to shard 1 at t+10, which posts back at t+20, ... Every hop must
  // execute at its exact timestamp on the destination engine.
  ShardCluster cluster(2, 1);
  std::vector<std::pair<std::size_t, TimeMs>> log;
  std::function<void(std::size_t, TimeMs)> hop = [&](std::size_t at_shard,
                                                     TimeMs when) {
    log.emplace_back(at_shard, when);
    const std::size_t next = 1 - at_shard;
    const TimeMs arrival = when + 10.0;
    if (arrival >= 95.0) return;
    cluster.post(at_shard, next, arrival, [&, next, arrival] {
      EXPECT_DOUBLE_EQ(cluster.sim(next).now(), arrival);
      hop(next, arrival);
    });
  };
  cluster.sim(0).schedule_at(0.0, [&] { hop(0, 0.0); });
  cluster.run(95.0, 10.0);
  ASSERT_EQ(log.size(), 10u);  // t = 0, 10, ..., 90 alternating shards
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i].first, i % 2);
    EXPECT_DOUBLE_EQ(log[i].second, 10.0 * static_cast<double>(i));
  }
}

TEST(ShardCluster, MessageArrivingExactlyAtWindowBoundRuns) {
  // Lookahead 10, event at t=0 posts a message arriving exactly at the
  // first window bound (t=10): legal (>= bound) and must execute at 10.
  ShardCluster cluster(2, 1);
  TimeMs ran_at = -1.0;
  cluster.sim(0).schedule_at(0.0, [&] {
    cluster.post(0, 1, 10.0, [&] { ran_at = cluster.sim(1).now(); });
  });
  cluster.run(50.0, 10.0);
  EXPECT_DOUBLE_EQ(ran_at, 10.0);
}

TEST(ShardCluster, MessageBeatingTheLookaheadIsRejected) {
  // A message arriving before the window bound proves the lookahead was
  // not conservative — the cluster must refuse to mis-order time.
  ShardCluster cluster(2, 1);
  cluster.sim(0).schedule_at(0.0, [&] {
    cluster.post(0, 1, 3.0, [] {});  // lookahead claims >= 10
  });
  EXPECT_THROW(cluster.run(50.0, 10.0), std::logic_error);
}

TEST(ShardCluster, MessagesInFlightAtHorizonAreDropped) {
  // The sequential engine never executes events past its horizon; a
  // message whose arrival lands beyond (or at) the horizon is dropped.
  ShardCluster cluster(2, 1);
  bool ran = false;
  cluster.sim(0).schedule_at(38.0, [&] {
    cluster.post(0, 1, 48.0, [&] { ran = true; });
  });
  cluster.run(40.0, 10.0);
  EXPECT_FALSE(ran);
}

TEST(ShardCluster, SingleShotEnforced) {
  ShardCluster cluster(2, 1);
  cluster.run(10.0, kInf);
  EXPECT_THROW(cluster.run(20.0, kInf), std::logic_error);
}

TEST(ShardCluster, RejectsNonPositiveLookahead) {
  ShardCluster cluster(2, 1);
  EXPECT_THROW(cluster.run(10.0, 0.0), std::logic_error);
}

TEST(ShardCluster, SingleSupernodeWorldDegeneratesCleanly) {
  // One shard: no windows, no inbox traffic — run_until straight to the
  // horizon regardless of lookahead. Fires at t = 1, 8, ..., 50: the
  // horizon-edge event runs (run_until semantics, legacy parity).
  ShardCluster cluster(1, 4);
  int fired = 0;
  cluster.sim(0).schedule_every(1.0, 7.0, [&] { ++fired; });
  cluster.run(50.0, 10.0);
  EXPECT_EQ(fired, 8);
}

TEST(ShardCluster, DigestInvariantInWorkerCount) {
  // Same event script at 1 worker and 4 workers must produce identical
  // execution traces per shard (worker count is pure mechanism).
  auto trace = [](std::size_t workers) {
    ShardCluster cluster(4, workers);
    std::vector<std::vector<TimeMs>> t(4);
    for (std::size_t s = 0; s < 4; ++s) {
      cluster.sim(s).schedule_every(0.5 + static_cast<double>(s), 3.0,
                                    [&, s] { t[s].push_back(cluster.sim(s).now()); });
      const std::size_t next = (s + 1) % 4;
      cluster.sim(s).schedule_at(2.0, [&, s, next] {
        cluster.post(s, next, 2.0 + 5.0, [&, next] {
          t[next].push_back(-cluster.sim(next).now());
        });
      });
    }
    cluster.run(30.0, 5.0);
    return t;
  };
  EXPECT_EQ(trace(1), trace(4));
}

}  // namespace
}  // namespace cloudfog::shard
