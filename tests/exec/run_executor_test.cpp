// Unit tests for the parallel experiment executor (exec/run_executor.h):
// submission-order results under adversarial completion order, exception
// capture with run identity, the jobs=1 inline code path, per-run registry
// merging against the sequential oracle, and a concurrent hammer for the
// tsan CI preset.
#include "exec/run_executor.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/sweep.h"
#include "obs/metrics.h"

namespace cloudfog::exec {
namespace {

using Task = std::pair<std::string, std::function<int()>>;

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

TEST(RunExecutorTest, ResultsFollowSubmissionOrderNotCompletionOrder) {
  RunExecutor executor(4);
  // Earlier submissions sleep longer, so completion order is roughly the
  // reverse of submission order — the result vector must not care.
  std::vector<Task> tasks;
  constexpr int kRuns = 8;
  for (int i = 0; i < kRuns; ++i) {
    tasks.emplace_back("run " + std::to_string(i), [i] {
      sleep_ms((kRuns - i) * 5);
      return i * 10;
    });
  }
  const std::vector<int> results = executor.map(std::move(tasks));
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kRuns));
  for (int i = 0; i < kRuns; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)], i * 10);
  }
}

TEST(RunExecutorTest, EmptyBatchIsANoOp) {
  RunExecutor executor(4);
  EXPECT_NO_THROW(executor.execute({}));
  EXPECT_TRUE(executor.map<int>({}).empty());
}

TEST(RunExecutorTest, WorkerExceptionCarriesRunIdentity) {
  RunExecutor executor(4);
  std::vector<Task> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.emplace_back(sweep_label(static_cast<std::size_t>(i), 7),
                       [i]() -> int {
      if (i == 2) throw std::runtime_error("scenario exploded");
      return i;
    });
  }
  try {
    executor.map(std::move(tasks));
    FAIL() << "expected RunError";
  } catch (const RunError& e) {
    EXPECT_EQ(e.run_index(), 2u);
    EXPECT_EQ(e.run_label(), "config=2 seed=7");
    EXPECT_NE(std::string(e.what()).find("scenario exploded"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("config=2 seed=7"),
              std::string::npos);
  }
}

TEST(RunExecutorTest, FirstFailedSubmissionIndexWins) {
  RunExecutor executor(4);
  // The later failure (index 5) completes long before the earlier one
  // (index 1); the reported run must still be the earliest submission, as
  // a sequential execution would have thrown there first.
  std::vector<Task> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.emplace_back("run " + std::to_string(i), [i]() -> int {
      if (i == 1) {
        sleep_ms(50);
        throw std::runtime_error("slow early failure");
      }
      if (i == 5) throw std::runtime_error("fast late failure");
      return i;
    });
  }
  try {
    executor.map(std::move(tasks));
    FAIL() << "expected RunError";
  } catch (const RunError& e) {
    EXPECT_EQ(e.run_index(), 1u);
    EXPECT_NE(std::string(e.what()).find("slow early failure"),
              std::string::npos);
  }
}

TEST(RunExecutorTest, JobsOneRunsInlineOnTheCallingThread) {
  RunExecutor executor(1);
  EXPECT_EQ(executor.jobs(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::pair<std::string, std::function<std::thread::id()>>> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.emplace_back("run", [] { return std::this_thread::get_id(); });
  }
  for (const std::thread::id id : executor.map(std::move(tasks))) {
    EXPECT_EQ(id, caller);
  }
}

TEST(RunExecutorTest, JobsOnePropagatesExceptionsUnwrapped) {
  RunExecutor executor(1);
  std::vector<Task> tasks;
  tasks.emplace_back("boom", []() -> int { throw std::domain_error("raw"); });
  // The sequential path must not wrap: callers keep the exact old behaviour.
  EXPECT_THROW(executor.map(std::move(tasks)), std::domain_error);
}

TEST(RunExecutorTest, SingleRunBatchStaysInlineEvenAtHighWidth) {
  RunExecutor executor(8);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::pair<std::string, std::function<std::thread::id()>>> tasks;
  tasks.emplace_back("only", [] { return std::this_thread::get_id(); });
  EXPECT_EQ(executor.map(std::move(tasks)).front(), caller);
}

TEST(RunExecutorTest, ZeroJobsResolvesToDefault) {
  RunExecutor executor(0);
  EXPECT_EQ(executor.jobs(), default_jobs());
  EXPECT_GE(executor.jobs(), 1u);
}

TEST(RunExecutorTest, WorkersSeeNoRegistryWhenCallerHasNone) {
  ASSERT_EQ(obs::registry(), nullptr);
  RunExecutor executor(4);
  std::vector<std::pair<std::string, std::function<bool()>>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.emplace_back("run", [] { return obs::registry() == nullptr; });
  }
  for (const bool uninstalled : executor.map(std::move(tasks))) {
    EXPECT_TRUE(uninstalled);
  }
}

/// One synthetic instrumented run: integer-valued records so FP sums are
/// exact and comparable bit-for-bit across executor widths.
void instrumented_run(int i) {
  obs::MetricsRegistry* r = obs::registry();
  ASSERT_NE(r, nullptr);
  r->counter("runs.total").add(1);
  r->counter("runs.weighted").add(static_cast<std::uint64_t>(i));
  r->gauge("runs.last_index").set(static_cast<double>(i));
  for (int k = 0; k <= i; ++k) {
    r->histogram("runs.samples").record(static_cast<double>(k));
  }
}

void run_instrumented_batch(std::size_t jobs, obs::MetricsRegistry& out) {
  obs::ScopedRegistry install(out);
  RunExecutor executor(jobs);
  std::vector<Task> tasks;
  for (int i = 0; i < 12; ++i) {
    tasks.emplace_back("run " + std::to_string(i), [i] {
      instrumented_run(i);
      return i;
    });
  }
  const std::vector<int> results = executor.map(std::move(tasks));
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)], i);
  }
}

TEST(RunExecutorTest, MergedMetricsMatchTheSequentialOracle) {
  obs::MetricsRegistry sequential;
  run_instrumented_batch(1, sequential);
  obs::MetricsRegistry parallel;
  run_instrumented_batch(4, parallel);

  const auto* seq_total = sequential.find_counter("runs.total");
  const auto* par_total = parallel.find_counter("runs.total");
  ASSERT_NE(seq_total, nullptr);
  ASSERT_NE(par_total, nullptr);
  EXPECT_EQ(seq_total->value(), par_total->value());
  EXPECT_EQ(sequential.find_counter("runs.weighted")->value(),
            parallel.find_counter("runs.weighted")->value());

  // Gauge: last-set-wins follows submission order, and the peak survives.
  EXPECT_EQ(sequential.find_gauge("runs.last_index")->value(),
            parallel.find_gauge("runs.last_index")->value());
  EXPECT_EQ(sequential.find_gauge("runs.last_index")->max(),
            parallel.find_gauge("runs.last_index")->max());

  const auto* seq_hist = sequential.find_histogram("runs.samples");
  const auto* par_hist = parallel.find_histogram("runs.samples");
  ASSERT_NE(seq_hist, nullptr);
  ASSERT_NE(par_hist, nullptr);
  EXPECT_EQ(seq_hist->count(), par_hist->count());
  EXPECT_EQ(seq_hist->sum(), par_hist->sum());
  EXPECT_EQ(seq_hist->min(), par_hist->min());
  EXPECT_EQ(seq_hist->max(), par_hist->max());
  EXPECT_EQ(seq_hist->nonzero_buckets(), par_hist->nonzero_buckets());
}

TEST(RunExecutorTest, GaugeMergeFollowsSubmissionOrderUnderAdversarialSleeps) {
  obs::MetricsRegistry registry;
  obs::ScopedRegistry install(registry);
  RunExecutor executor(4);
  std::vector<Task> tasks;
  constexpr int kRuns = 8;
  for (int i = 0; i < kRuns; ++i) {
    tasks.emplace_back("run " + std::to_string(i), [i] {
      sleep_ms((kRuns - i) * 5);  // later submissions finish first
      obs::registry()->gauge("order.gauge").set(static_cast<double>(i));
      return i;
    });
  }
  executor.map(std::move(tasks));
  // Sequentially, the last submission's set wins — regardless of the
  // completion order the sleeps forced.
  EXPECT_EQ(registry.find_gauge("order.gauge")->value(),
            static_cast<double>(kRuns - 1));
  EXPECT_EQ(registry.find_gauge("order.gauge")->max(),
            static_cast<double>(kRuns - 1));
}

TEST(RunExecutorTest, MetricsOfRunsAfterAFailureAreNotMerged) {
  obs::MetricsRegistry registry;
  std::atomic<int> executed{0};
  try {
    obs::ScopedRegistry install(registry);
    RunExecutor executor(2);
    std::vector<Task> tasks;
    for (int i = 0; i < 6; ++i) {
      tasks.emplace_back("run " + std::to_string(i), [i, &executed]() -> int {
        executed.fetch_add(1);
        obs::registry()->counter("merged.runs").add(1);
        if (i == 1) throw std::runtime_error("fail at 1");
        return i;
      });
    }
    executor.map(std::move(tasks));
    FAIL() << "expected RunError";
  } catch (const RunError& e) {
    EXPECT_EQ(e.run_index(), 1u);
  }
  // Exactly the sequential prefix lands in the caller's registry: runs 0
  // and 1 (the failed run's partial effects), even though other runs
  // executed on the pool before the barrier.
  ASSERT_NE(registry.find_counter("merged.runs"), nullptr);
  EXPECT_EQ(registry.find_counter("merged.runs")->value(), 2u);
  EXPECT_GE(executed.load(), 2);
}

// The tsan-preset hammer: many concurrent runs, each recording into its own
// per-run registry through the hot-path macros (thread_local caches), with
// the merge folding everything back. Run under -fsanitize=thread this
// proves per-run scoping keeps instrument state race-free.
TEST(RunExecutorTest, ConcurrentPerRunRegistriesAreRaceFree) {
  obs::MetricsRegistry registry;
  obs::ScopedRegistry install(registry);
  RunExecutor executor(8);
  std::vector<Task> tasks;
  constexpr int kRuns = 64;
  for (int i = 0; i < kRuns; ++i) {
    tasks.emplace_back("hammer " + std::to_string(i), [i] {
      for (int k = 0; k < 500; ++k) {
        CF_OBS_COUNT_HOT("hammer.count", 1);
        CF_OBS_HIST_HOT("hammer.hist", static_cast<double>(k % 16));
      }
      obs::registry()->gauge("hammer.last").set(static_cast<double>(i));
      return i;
    });
  }
  const std::vector<int> results = executor.map(std::move(tasks));
  for (int i = 0; i < kRuns; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)], i);
  }
  EXPECT_EQ(registry.find_counter("hammer.count")->value(),
            static_cast<std::uint64_t>(kRuns) * 500u);
  EXPECT_EQ(registry.find_histogram("hammer.hist")->count(),
            static_cast<std::uint64_t>(kRuns) * 500u);
  EXPECT_EQ(registry.find_gauge("hammer.last")->value(),
            static_cast<double>(kRuns - 1));
}

TEST(RunSweepTest, GridIsConfigMajorSeedMinor) {
  RunExecutor executor(4);
  const std::vector<int> configs{10, 20, 30};
  const auto grid =
      run_sweep(executor, configs, 2, [](int config, std::size_t seed) {
        return config * 100 + static_cast<int>(seed);
      });
  ASSERT_EQ(grid.size(), 3u);
  for (std::size_t c = 0; c < configs.size(); ++c) {
    ASSERT_EQ(grid[c].size(), 2u);
    for (std::size_t s = 0; s < 2; ++s) {
      EXPECT_EQ(grid[c][s], configs[c] * 100 + static_cast<int>(s));
    }
  }
}

}  // namespace
}  // namespace cloudfog::exec
