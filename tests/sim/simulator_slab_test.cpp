// Tests for the slab/free-list internals of the event engine: generation
// tagging across slot reuse, the eager tombstone purge, and the zero-
// allocation steady-state guarantee (verified by interposing the global
// allocator for this binary).
#include "sim/simulator.h"

#include <cstdint>
#include <cstdlib>
#include <new>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

// ---------------------------------------------------------------------------
// Global allocator interposition. Every operator new/delete in this binary
// routes through malloc/free with a counter bump; tests read the counter
// delta around a measured region. gtest's own allocations happen outside
// those regions, so they don't perturb the numbers.
// ---------------------------------------------------------------------------

namespace {
std::uint64_t g_alloc_count = 0;  // sim is single-threaded; plain is fine
}  // namespace

// GCC's -Wmismatched-new-delete pairs these frees against the *library's*
// operator new instead of the malloc-backed replacements below and flags
// them under some instrumentation flag sets (seen with -fsanitize=thread).
// Replacing the global operators this way is the standard interposition
// mechanism ([new.delete.single]) and the malloc/free pairing is correct.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace cloudfog::sim {
namespace {

TEST(SimulatorSlabTest, HandlesAreNeverInvalidAndNeverRepeat) {
  Simulator sim;
  std::set<EventId> seen;
  for (int i = 0; i < 2000; ++i) {
    const EventId id = sim.schedule_after(1.0, [] {});
    EXPECT_NE(id, kInvalidEvent);
    EXPECT_TRUE(seen.insert(id).second) << "handle reused at round " << i;
    sim.run_all();  // frees the slot; the next round recycles it
  }
}

TEST(SimulatorSlabTest, StaleHandleAfterSlotReuseCancelsNothing) {
  Simulator sim;
  int first_fired = 0;
  int second_fired = 0;
  const EventId first = sim.schedule_at(1.0, [&] { ++first_fired; });
  sim.run_all();
  ASSERT_EQ(first_fired, 1);

  // The freed slot is recycled under a bumped generation.
  const EventId second = sim.schedule_at(2.0, [&] { ++second_fired; });
  EXPECT_NE(first, second);

  // The stale handle must not touch the new occupant of its old slot.
  EXPECT_FALSE(sim.cancel(first));
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_all();
  EXPECT_EQ(second_fired, 1);
}

TEST(SimulatorSlabTest, CancelAfterFireThenReuseStaysFalse) {
  Simulator sim;
  for (int round = 0; round < 50; ++round) {
    const EventId id = sim.schedule_after(1.0, [] {});
    sim.run_all();
    EXPECT_FALSE(sim.cancel(id));   // fired
    EXPECT_FALSE(sim.cancel(id));   // double-cancel of a dead handle
  }
}

TEST(SimulatorSlabTest, DoubleCancelSecondIsFalseEvenBeforeSlotReclaim) {
  Simulator sim;
  const EventId id = sim.schedule_after(5.0, [] {});
  EXPECT_TRUE(sim.cancel(id));
  // The tombstone may still sit in the heap; the handle is dead regardless.
  EXPECT_FALSE(sim.cancel(id));
  sim.run_all();
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_EQ(sim.executed(), 0u);
}

TEST(SimulatorSlabTest, HandleEncodesGenerationAboveSlotIndex) {
  Simulator sim;
  const EventId a = sim.schedule_after(1.0, [] {});
  // Generation >= 1 lives in the high 32 bits, so every valid handle
  // compares above the full 32-bit slot-index space (and above
  // kInvalidEvent == 0).
  EXPECT_GE(a >> 32, 1u);
  sim.run_all();
  const EventId b = sim.schedule_after(1.0, [] {});
  // Same slot, bumped generation.
  EXPECT_EQ(a & 0xffffffffu, b & 0xffffffffu);
  EXPECT_EQ((a >> 32) + 1, b >> 32);
  sim.run_all();
}

TEST(SimulatorSlabTest, MassCancelPurgesTombstonesEagerly) {
  obs::MetricsRegistry r;
  obs::ScopedRegistry scoped(r);
  Simulator sim;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(sim.schedule_at(static_cast<TimeMs>(i), [&] { ++fired; }));
  }
  int cancelled = 0;
  for (int i = 0; i < 1000; ++i) {
    if (i % 4 == 0) continue;  // keep one in four, cancel the rest (750)
    EXPECT_TRUE(sim.cancel(ids[static_cast<std::size_t>(i)]));
    ++cancelled;
  }
  ASSERT_EQ(cancelled, 750);
  EXPECT_EQ(sim.pending(), 250u);
  // Tombstones crossed the half-queue threshold mid-way (501 dead in a
  // 1000-node heap), so a purge must have run before any event fired.
  const obs::Counter* purged = r.find_counter("sim.events.purged");
  ASSERT_NE(purged, nullptr);
  EXPECT_GE(purged->value(), 500u);
  sim.run_all();
  EXPECT_EQ(fired, 250);
  EXPECT_EQ(sim.executed(), 250u);
  EXPECT_EQ(r.find_counter("sim.events.cancelled")->value(), 750u);
}

TEST(SimulatorSlabTest, PurgePreservesFireOrder) {
  Simulator sim;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(sim.schedule_at(static_cast<TimeMs>(100 - (i % 100)),
                                  [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 200; ++i) {
    if (i % 3 != 0) {
      sim.cancel(ids[static_cast<std::size_t>(i)]);  // 133 — trips a purge
    }
  }
  sim.run_all();
  // Survivors must fire in (when, seq) order: ascending time, scheduling
  // order within a timestamp.
  std::vector<int> expected;
  for (int when = 1; when <= 100; ++when) {
    for (int i = 0; i < 200; ++i) {
      if (i % 3 == 0 && 100 - (i % 100) == when) expected.push_back(i);
    }
  }
  EXPECT_EQ(order, expected);
}

TEST(SimulatorSlabTest, SteadyStateSchedulesAndFiresWithoutAllocating) {
  Simulator sim;
  std::uint64_t ticks = 0;
  // Warm the slab, free list and heap far beyond what the measured loop
  // needs concurrently.
  for (int i = 0; i < 256; ++i) {
    sim.schedule_after(static_cast<TimeMs>(i % 7), [&ticks] { ++ticks; });
  }
  sim.run_all();
  ASSERT_EQ(ticks, 256u);

  const std::uint64_t before = g_alloc_count;
  for (int i = 0; i < 10000; ++i) {
    sim.schedule_after(1.0, [&ticks] { ++ticks; });
    sim.step();
  }
  const std::uint64_t after = g_alloc_count;
  EXPECT_EQ(after - before, 0u)
      << "steady-state schedule+fire performed heap allocations";
  EXPECT_EQ(ticks, 10256u);
}

TEST(SimulatorSlabTest, SteadyStateCancelChurnWithoutAllocating) {
  Simulator sim;
  std::uint64_t ticks = 0;
  std::vector<EventId> ids;
  ids.reserve(64);
  // One batch: schedule 64, cancel three of every four (48 — enough to trip
  // the eager purge at 33 tombstones in a 64-node heap), fire the rest.
  const auto batch = [&] {
    ids.clear();
    for (int i = 0; i < 64; ++i) {
      ids.push_back(
          sim.schedule_after(static_cast<TimeMs>(i), [&ticks] { ++ticks; }));
    }
    for (int i = 0; i < 64; ++i) {
      if (i % 4 != 0) sim.cancel(ids[static_cast<std::size_t>(i)]);
    }
    sim.run_all();
  };

  // Warm: run full batches so every container reaches its high-water mark.
  batch();
  batch();

  const std::uint64_t before = g_alloc_count;
  for (int round = 0; round < 100; ++round) {
    batch();
  }
  EXPECT_EQ(g_alloc_count - before, 0u)
      << "cancel/purge churn performed heap allocations";
}

TEST(SimulatorSlabTest, PeriodicSelfCancelCanScheduleFromItsOwnCallback) {
  Simulator sim;
  int periodic_fires = 0;
  std::vector<int> follow_ups;
  EventId id = kInvalidEvent;
  id = sim.schedule_every(1.0, 1.0, [&] {
    if (++periodic_fires < 3) return;
    // Cancel our own handle — the re-armed tombstone is the only heap node,
    // so this trips the purge threshold mid-callback — then keep using
    // captured state and schedule through the engine. An unsafe purge would
    // have destroyed this closure and handed its slot to the schedules.
    EXPECT_TRUE(sim.cancel(id));
    sim.schedule_after(1.0, [&] { follow_ups.push_back(periodic_fires); });
    sim.schedule_after(2.0,
                       [&] { follow_ups.push_back(periodic_fires + 1); });
    EXPECT_EQ(periodic_fires, 3);  // captures must still be intact
  });
  sim.run_all();
  EXPECT_EQ(periodic_fires, 3);
  EXPECT_EQ(follow_ups, (std::vector<int>{3, 4}));
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.executed(), 5u);
}

TEST(SimulatorSlabTest, SelfCancelledPeriodicSlotReclaimedViaDeferredPurge) {
  obs::MetricsRegistry r;
  obs::ScopedRegistry scoped(r);
  Simulator sim;
  EventId id = kInvalidEvent;
  int fires = 0;
  id = sim.schedule_every(1.0, 1.0, [&] {
    ++fires;
    sim.cancel(id);
  });
  sim.run_all();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(sim.pending(), 0u);
  // The deferred purge ran once the callback returned (its tombstone was
  // the whole heap) and reclaimed the slot: the next schedule recycles it
  // under a bumped generation.
  const obs::Counter* purged = r.find_counter("sim.events.purged");
  ASSERT_NE(purged, nullptr);
  EXPECT_EQ(purged->value(), 1u);
  const EventId next = sim.schedule_after(1.0, [] {});
  EXPECT_EQ(next & 0xffffffffu, id & 0xffffffffu);
  EXPECT_EQ(next >> 32, (id >> 32) + 1);
  sim.run_all();
}

TEST(SimulatorSlabTest, MassCancelFromInsideCallbackStaysConsistent) {
  Simulator sim;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sim.schedule_at(10.0 + i, [&] { ++fired; }));
  }
  // One early event cancels 80 of the 100 from inside its callback — far
  // past the purge threshold, so the compaction must be deferred until the
  // callback returns.
  sim.schedule_at(1.0, [&] {
    for (int i = 0; i < 100; ++i) {
      if (i % 5 != 0) {
        EXPECT_TRUE(sim.cancel(ids[static_cast<std::size_t>(i)]));
      }
    }
  });
  sim.run_all();
  EXPECT_EQ(fired, 20);
  EXPECT_EQ(sim.executed(), 21u);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorSlabTest, ThrowingCallbackStillReleasesItsSlot) {
  Simulator sim;
  const EventId id = sim.schedule_after(
      1.0, [] { throw std::runtime_error("callback failure"); });
  EXPECT_THROW(sim.step(), std::runtime_error);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.executed(), 1u);
  EXPECT_FALSE(sim.cancel(id));
  // The slot made it back to the free list on unwind: the next schedule
  // recycles it under a bumped generation instead of growing the slab.
  const EventId next = sim.schedule_after(1.0, [] {});
  EXPECT_EQ(next & 0xffffffffu, id & 0xffffffffu);
  EXPECT_EQ(next >> 32, (id >> 32) + 1);
  sim.run_all();
  EXPECT_EQ(sim.executed(), 2u);
}

TEST(SimulatorSlabTest, ReenteringTheEngineFromACallbackIsRejected) {
  Simulator sim;
  sim.schedule_after(1.0, [&] { sim.step(); });
  EXPECT_THROW(sim.step(), std::logic_error);
  sim.schedule_after(1.0, [&] { sim.run_until(5.0); });
  EXPECT_THROW(sim.step(), std::logic_error);
  // The engine stays usable: the offending slots were reclaimed on unwind.
  EXPECT_EQ(sim.pending(), 0u);
  int fired = 0;
  sim.schedule_after(1.0, [&] { ++fired; });
  sim.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorSlabTest, QueueDepthGaugeTracksFiresAndCancels) {
  obs::MetricsRegistry r;
  obs::ScopedRegistry scoped(r);
  Simulator sim;
  const EventId a = sim.schedule_after(1.0, [] {});
  sim.schedule_after(2.0, [] {});
  sim.schedule_after(3.0, [] {});
  const obs::Gauge* depth = r.find_gauge("sim.queue.depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->value(), 3.0);
  sim.cancel(a);
  EXPECT_EQ(depth->value(), 2.0);
  sim.step();
  EXPECT_EQ(depth->value(), 1.0);
  sim.run_all();
  EXPECT_EQ(depth->value(), 0.0);
  EXPECT_EQ(depth->max(), 3.0);
}

TEST(SimulatorSlabTest, PeriodicReuseKeepsHandleValidUntilCancel) {
  Simulator sim;
  int fires = 0;
  const EventId id = sim.schedule_every(1.0, 1.0, [&] { ++fires; });
  for (int i = 0; i < 5; ++i) sim.step();
  EXPECT_EQ(fires, 5);
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  sim.run_until(100.0);
  EXPECT_EQ(fires, 5);

  // The periodic slot is reclaimed and recycles under a new generation.
  const EventId next = sim.schedule_after(1.0, [] {});
  EXPECT_NE(next, id);
  EXPECT_FALSE(sim.cancel(id));
  sim.run_all();
}

}  // namespace
}  // namespace cloudfog::sim
