#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace cloudfog::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.executed(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30.0, [&] { order.push_back(3); });
  sim.schedule_at(10.0, [&] { order.push_back(1); });
  sim.schedule_at(20.0, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30.0);
}

TEST(Simulator, EqualTimesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule_at(10.0, [&order, i] { order.push_back(i); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_after(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run_all();
  EXPECT_EQ(fired_at, 7.5);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator sim;
  sim.schedule_at(10.0, [] {});
  sim.run_all();
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), std::logic_error);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), std::logic_error);
}

TEST(Simulator, RejectsEmptyCallback) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(1.0, Simulator::Callback{}), std::logic_error);
}

TEST(Simulator, CancelPendingEvent) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(10.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run_all();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.executed(), 0u);
}

TEST(Simulator, CancelTwiceReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(10.0, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelFiredEventReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  sim.run_all();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelInvalidHandleIsNoop) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(kInvalidEvent));
  EXPECT_FALSE(sim.cancel(999));
}

TEST(Simulator, PeriodicEventRepeats) {
  Simulator sim;
  int count = 0;
  EventId id = kInvalidEvent;
  id = sim.schedule_every(5.0, 10.0, [&] {
    if (++count == 3) sim.cancel(id);
  });
  sim.run_all();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.now(), 25.0);  // fires at 5, 15, 25
}

TEST(Simulator, PeriodicCancelFromOutside) {
  Simulator sim;
  int count = 0;
  const EventId id = sim.schedule_every(1.0, 1.0, [&] { ++count; });
  sim.schedule_at(3.5, [&] { sim.cancel(id); });
  sim.run_until(10.0);
  EXPECT_EQ(count, 3);  // 1, 2, 3
}

TEST(Simulator, PeriodicRequiresPositivePeriod) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_every(0.0, 0.0, [] {}), std::logic_error);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  std::vector<double> fired;
  sim.schedule_at(5.0, [&] { fired.push_back(5.0); });
  sim.schedule_at(15.0, [&] { fired.push_back(15.0); });
  sim.run_until(10.0);
  EXPECT_EQ(fired, (std::vector<double>{5.0}));
  EXPECT_EQ(sim.now(), 10.0);
  sim.run_until(20.0);
  EXPECT_EQ(fired.size(), 2u);
}

TEST(Simulator, RunUntilHorizonInclusive) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(10.0, [&] { fired = true; });
  sim.run_until(10.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilAdvancesClockWithNoEvents) {
  Simulator sim;
  sim.run_until(42.0);
  EXPECT_EQ(sim.now(), 42.0);
}

TEST(Simulator, RunUntilRejectsPastHorizon) {
  Simulator sim;
  sim.run_until(10.0);
  EXPECT_THROW(sim.run_until(5.0), std::logic_error);
}

TEST(Simulator, StepExecutesSingleEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsScheduleEventsRecursively) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sim.schedule_after(1.0, recurse);
  };
  sim.schedule_after(1.0, recurse);
  sim.run_all();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), 10.0);
  EXPECT_EQ(sim.executed(), 10u);
}

TEST(Simulator, ExecutedCountsSkipCancelled) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  const EventId id = sim.schedule_at(2.0, [] {});
  sim.cancel(id);
  sim.run_all();
  EXPECT_EQ(sim.executed(), 1u);
}

TEST(Simulator, CancelledPeriodicStopsBeforeNextFire) {
  Simulator sim;
  int count = 0;
  const EventId id = sim.schedule_every(1.0, 1.0, [&] { ++count; });
  sim.run_until(2.5);
  EXPECT_EQ(count, 2);
  sim.cancel(id);
  sim.run_until(10.0);
  EXPECT_EQ(count, 2);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  double last = -1.0;
  bool monotone = true;
  for (int i = 999; i >= 0; --i) {
    sim.schedule_at(static_cast<double>(i % 100), [&, i] {
      if (sim.now() < last) monotone = false;
      last = sim.now();
    });
  }
  sim.run_all();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.executed(), 1000u);
}

}  // namespace
}  // namespace cloudfog::sim
