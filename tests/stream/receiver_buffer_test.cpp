#include "stream/receiver_buffer.h"

#include <gtest/gtest.h>

namespace cloudfog::stream {
namespace {

TEST(ReceiverBuffer, DrainsAtPlaybackRate) {
  ReceiverBuffer buf(1'000.0);  // 1 Mbps playback
  buf.on_arrival(0.0, 500.0);
  // After 300 ms: 500 - 300 = 200 kbit left.
  EXPECT_NEAR(buf.buffered_kbit(300.0), 200.0, 1e-9);
}

TEST(ReceiverBuffer, EmptiesAndStalls) {
  ReceiverBuffer buf(1'000.0);
  buf.on_arrival(0.0, 100.0);
  // Buffer drains in 100 ms; 400 ms elapse -> 300 ms stalled.
  EXPECT_DOUBLE_EQ(buf.buffered_kbit(500.0), 0.0);
  EXPECT_NEAR(buf.stall_ms(), 400.0, 1e-9);
  EXPECT_EQ(buf.stall_count(), 1u);
}

TEST(ReceiverBuffer, RefillEndsStall) {
  ReceiverBuffer buf(1'000.0);
  buf.on_arrival(0.0, 100.0);
  buf.on_arrival(300.0, 100.0);  // stalled 100..300
  EXPECT_NEAR(buf.stall_ms(), 200.0, 1e-9);
  EXPECT_NEAR(buf.buffered_kbit(350.0), 50.0, 1e-9);
  // New stall episode after it empties again.
  buf.on_arrival(600.0, 100.0);
  EXPECT_EQ(buf.stall_count(), 2u);
}

TEST(ReceiverBuffer, ContinuityFractionOfUnstalledTime) {
  ReceiverBuffer buf(1'000.0);
  buf.on_arrival(0.0, 100.0);
  // At 400 ms: stalled 300 of 400 ms -> continuity 0.25.
  EXPECT_NEAR(buf.continuity(400.0), 0.25, 1e-9);
}

TEST(ReceiverBuffer, ContinuityIsOneWithoutStalls) {
  ReceiverBuffer buf(1'000.0);
  buf.on_arrival(0.0, 1'000.0);
  EXPECT_DOUBLE_EQ(buf.continuity(500.0), 1.0);
}

TEST(ReceiverBuffer, ContinuityBeforeStartIsOne) {
  ReceiverBuffer buf(1'000.0);
  EXPECT_DOUBLE_EQ(buf.continuity(100.0), 1.0);
}

TEST(ReceiverBuffer, ContinuityIncludesLiveStall) {
  ReceiverBuffer buf(1'000.0);
  buf.on_arrival(0.0, 100.0);
  (void)buf.buffered_kbit(200.0);  // settles: stalled since 100 ms
  // Querying continuity later without settling must count the live stall.
  EXPECT_NEAR(buf.continuity(400.0), 0.25, 1e-9);
}

TEST(ReceiverBuffer, BufferedSegmentsUsesTau) {
  ReceiverBuffer buf(1'000.0);
  buf.on_arrival(0.0, 150.0);
  EXPECT_NEAR(buf.buffered_segments(0.0, 50.0), 3.0, 1e-9);
  EXPECT_THROW(buf.buffered_segments(0.0, 0.0), std::logic_error);
}

TEST(ReceiverBuffer, PlaybackRateChangeAffectsDrain) {
  ReceiverBuffer buf(1'000.0);
  buf.on_arrival(0.0, 400.0);
  buf.set_playback_rate(200.0, 500.0);  // drained 200, rate halves
  // At 600 ms: 200 kbit left at t=200, minus 0.5 kbit/ms * 400 ms = 0.
  EXPECT_NEAR(buf.buffered_kbit(500.0), 50.0, 1e-9);
}

TEST(ReceiverBuffer, DownloadRateEwmaTracksArrivals) {
  ReceiverBuffer buf(1'000.0);
  buf.on_arrival(0.0, 100.0);
  // Steady 100 kbit every 100 ms = 1000 kbps.
  for (int i = 1; i <= 20; ++i)
    buf.on_arrival(i * 100.0, 100.0);
  EXPECT_NEAR(buf.download_rate(), 1'000.0, 100.0);
}

TEST(ReceiverBuffer, RejectsBadArguments) {
  EXPECT_THROW(ReceiverBuffer(0.0), std::logic_error);
  ReceiverBuffer buf(1'000.0);
  buf.on_arrival(10.0, 1.0);
  EXPECT_THROW(buf.on_arrival(5.0, 1.0), std::logic_error);   // time reversal
  EXPECT_THROW(buf.on_arrival(20.0, -1.0), std::logic_error); // negative size
  EXPECT_THROW(buf.set_playback_rate(20.0, 0.0), std::logic_error);
}

TEST(ReceiverBuffer, AdaptationScenarioDownThenUp) {
  // Emulates the paper's Figure 3 flow at the buffer level: arrivals slower
  // than playback shrink r; faster arrivals grow it.
  ReceiverBuffer buf(800.0);  // level 3 playback
  const Kbit tau = 80.0;      // one 100 ms segment at level 3
  buf.on_arrival(0.0, 2.0 * tau);
  // Congestion: only half a segment arrives per period.
  for (int i = 1; i <= 5; ++i) buf.on_arrival(i * 100.0, 0.5 * tau);
  const double r_congested = buf.buffered_segments(500.0, tau);
  EXPECT_LT(r_congested, 1.0);
  // Recovery: two segments per period.
  for (int i = 6; i <= 12; ++i) buf.on_arrival(i * 100.0, 2.0 * tau);
  const double r_recovered = buf.buffered_segments(1'200.0, tau);
  EXPECT_GT(r_recovered, r_congested + 1.0);
}

}  // namespace
}  // namespace cloudfog::stream
