#include "stream/video.h"

#include <gtest/gtest.h>

namespace cloudfog::stream {
namespace {

TEST(PacketCount, Boundaries) {
  EXPECT_EQ(packet_count(0.0), 0);
  EXPECT_EQ(packet_count(0.001), 1);
  EXPECT_EQ(packet_count(kPacketKbit), 1);
  EXPECT_EQ(packet_count(kPacketKbit + 0.001), 2);
  EXPECT_EQ(packet_count(10.0 * kPacketKbit), 10);
}

TEST(PacketCount, RejectsNegative) {
  EXPECT_THROW(packet_count(-1.0), std::logic_error);
}

TEST(Packetize, SizesSumToSegment) {
  VideoSegment seg;
  seg.id = 42;
  seg.size_kbit = 30.0;  // 2 full packets + one 6 kbit packet
  seg.deadline_ms = 120.0;
  const auto packets = packetize(seg);
  ASSERT_EQ(packets.size(), 3u);
  Kbit total = 0.0;
  for (const auto& p : packets) {
    total += p.size_kbit;
    EXPECT_EQ(p.segment_id, 42u);
    EXPECT_DOUBLE_EQ(p.deadline_ms, 120.0);
    EXPECT_FALSE(p.dropped);
  }
  EXPECT_DOUBLE_EQ(total, 30.0);
  EXPECT_DOUBLE_EQ(packets[0].size_kbit, kPacketKbit);
  EXPECT_DOUBLE_EQ(packets[2].size_kbit, 6.0);
}

TEST(Packetize, IndicesSequential) {
  VideoSegment seg;
  seg.size_kbit = 5.0 * kPacketKbit;
  const auto packets = packetize(seg);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(packets[i].index, static_cast<int>(i));
  }
}

TEST(Packetize, EmptySegment) {
  VideoSegment seg;
  seg.size_kbit = 0.0;
  EXPECT_TRUE(packetize(seg).empty());
}

TEST(SegmentFactory, IdsMonotonic) {
  SegmentFactory factory;
  const auto a = factory.make(1, 0, 3, 100.0, 0.0);
  const auto b = factory.make(1, 0, 3, 100.0, 100.0);
  EXPECT_LT(a.id, b.id);
  EXPECT_EQ(factory.segments_created(), 2u);
}

TEST(SegmentFactory, SizeFollowsBitrateAndDuration) {
  SegmentFactory factory;
  // Level 3 = 800 kbps; 100 ms of video = 80 kbit.
  const auto seg = factory.make(1, 0, 3, 100.0, 0.0);
  EXPECT_DOUBLE_EQ(seg.size_kbit, 80.0);
  EXPECT_EQ(seg.quality_level, 3);
  EXPECT_DOUBLE_EQ(seg.duration_ms, 100.0);
}

TEST(SegmentFactory, DeadlineUsesGameRequirement) {
  SegmentFactory factory;
  // Game 0 (level-1 row): 30 ms requirement.
  const auto seg = factory.make(7, 0, 1, 33.3, 1'000.0);
  EXPECT_DOUBLE_EQ(seg.action_time_ms, 1'000.0);
  EXPECT_DOUBLE_EQ(seg.deadline_ms, 1'030.0);
  EXPECT_EQ(seg.player, 7u);
  // Game 4 (level-5 row): 110 ms requirement.
  const auto seg2 = factory.make(7, 4, 5, 33.3, 1'000.0);
  EXPECT_DOUBLE_EQ(seg2.deadline_ms, 1'110.0);
}

TEST(SegmentFactory, LossToleranceFromGame) {
  SegmentFactory factory;
  const auto seg = factory.make(1, 2, 3, 100.0, 0.0);
  EXPECT_DOUBLE_EQ(seg.loss_tolerance, game::game_by_id(2).loss_tolerance);
}

TEST(SegmentFactory, RejectsNonPositiveDuration) {
  SegmentFactory factory;
  EXPECT_THROW(factory.make(1, 0, 3, 0.0, 0.0), std::logic_error);
}

TEST(SegmentFactory, RejectsUnknownGameOrLevel) {
  SegmentFactory factory;
  EXPECT_THROW(factory.make(1, 9, 3, 100.0, 0.0), std::logic_error);
  EXPECT_THROW(factory.make(1, 0, 7, 100.0, 0.0), std::logic_error);
}

}  // namespace
}  // namespace cloudfog::stream
