#include "stream/stream_store.h"

#include <gtest/gtest.h>

#include <vector>

#include "stream/queued_sender.h"
#include "stream/receiver_buffer.h"

namespace cloudfog::stream {
namespace {

TEST(SlabStore, CreateGetDestroyRoundTrip) {
  FluidSenderStore store;
  const StoreHandle h = store.create(1'000.0);
  ASSERT_TRUE(store.contains(h));
  EXPECT_EQ(store.live(), 1u);
  EXPECT_DOUBLE_EQ(store.get(h).capacity(), 1'000.0);

  const auto sched = store.get(h).enqueue(10.0, 500.0);
  EXPECT_DOUBLE_EQ(sched.end, 510.0);

  store.destroy(h);
  EXPECT_FALSE(store.contains(h));
  EXPECT_EQ(store.live(), 0u);
}

TEST(SlabStore, NullHandleIsNeverContained) {
  FluidSenderStore store;
  EXPECT_FALSE(store.contains(kNullHandle));
  const StoreHandle h = store.create(100.0);
  EXPECT_NE(h, kNullHandle);
  EXPECT_FALSE(store.contains(kNullHandle));
}

TEST(SlabStore, SlotReuseStalesOldHandle) {
  FluidSenderStore store;
  const StoreHandle first = store.create(100.0);
  store.destroy(first);
  const StoreHandle second = store.create(200.0);
  // The slot is recycled (footprint stays at one cell) but the generation
  // bump makes the first handle distinguishable — and dead.
  EXPECT_EQ(store.capacity(), 1u);
  EXPECT_NE(first, second);
  EXPECT_FALSE(store.contains(first));
  ASSERT_TRUE(store.contains(second));
  EXPECT_DOUBLE_EQ(store.get(second).capacity(), 200.0);
}

TEST(SlabStore, StatePersistsAcrossSlabGrowth) {
  ReceiverBufferStore store;
  const StoreHandle h = store.create(1'000.0);
  store.get(h).on_arrival(0.0, 2'000.0);
  // Force reallocation: the slab value must move with its vector.
  std::vector<StoreHandle> extra;
  for (int i = 0; i < 1'000; ++i) extra.push_back(store.create(500.0));
  EXPECT_DOUBLE_EQ(store.get(h).total_arrived_kbit(), 2'000.0);
  EXPECT_EQ(store.live(), 1'001u);
  for (StoreHandle e : extra) store.destroy(e);
  EXPECT_EQ(store.live(), 1u);
  EXPECT_TRUE(store.contains(h));
}

TEST(SlabStore, InterleavedChurnKeepsHandlesIndependent) {
  FluidSenderStore store;
  std::vector<StoreHandle> handles;
  for (int i = 0; i < 8; ++i) {
    handles.push_back(store.create(static_cast<double>(100 * (i + 1))));
  }
  for (std::size_t i = 0; i < 8; i += 2) store.destroy(handles[i]);
  // Recycled slots pick up fresh values without touching the survivors.
  for (int i = 0; i < 4; ++i) store.create(9'999.0);
  EXPECT_EQ(store.capacity(), 8u);
  for (std::size_t i = 1; i < 8; i += 2) {
    ASSERT_TRUE(store.contains(handles[i]));
    EXPECT_DOUBLE_EQ(store.get(handles[i]).capacity(),
                     100.0 * static_cast<double>(i + 1));
  }
  for (std::size_t i = 0; i < 8; i += 2) {
    EXPECT_FALSE(store.contains(handles[i]));
  }
}

}  // namespace
}  // namespace cloudfog::stream
