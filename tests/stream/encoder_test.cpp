#include "stream/encoder.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace cloudfog::stream {
namespace {

EncoderConfig config(int gop = 30, double weight = 6.0, double sigma = 0.0) {
  EncoderConfig c;
  c.gop_length = gop;
  c.i_frame_weight = weight;
  c.residual_sigma = sigma;
  return c;
}

TEST(Encoder, GopPatternIFrameFirst) {
  EncoderModel enc(config(10), 3);
  util::Rng rng(1);
  for (int g = 0; g < 3; ++g) {
    for (int i = 0; i < 10; ++i) {
      const auto frame = enc.next_frame(rng);
      EXPECT_EQ(frame.is_i_frame, i == 0) << "gop " << g << " frame " << i;
    }
  }
}

TEST(Encoder, IFramesAreWeightTimesLarger) {
  EncoderModel enc(config(10, 6.0, 0.0), 3);
  util::Rng rng(1);
  const auto i_frame = enc.next_frame(rng);
  const auto p_frame = enc.next_frame(rng);
  EXPECT_NEAR(i_frame.size_kbit / p_frame.size_kbit, 6.0, 1e-9);
}

TEST(Encoder, GopTotalMatchesBitrate) {
  // Without residual noise, one GOP's total must equal gop_length frames at
  // the level's mean frame size (bitrate preserved exactly).
  EncoderModel enc(config(30, 6.0, 0.0), 4);  // 1200 kbps, 30 fps
  util::Rng rng(1);
  Kbit total = 0.0;
  for (int i = 0; i < 30; ++i) total += enc.next_frame(rng).size_kbit;
  EXPECT_NEAR(total, 1'200.0, 1e-6);  // one second of video
}

TEST(Encoder, LongRunRateWithNoise) {
  EncoderModel enc(config(30, 6.0, 0.3), 3);  // 800 kbps
  util::Rng rng(2);
  Kbit total = 0.0;
  const int frames = 30 * 200;  // 200 seconds
  for (int i = 0; i < frames; ++i) total += enc.next_frame(rng).size_kbit;
  EXPECT_NEAR(total / 200.0, 800.0, 25.0);
}

TEST(Encoder, LevelSwitchWaitsForGopBoundary) {
  EncoderModel enc(config(10), 3);
  util::Rng rng(1);
  // Consume 4 frames into the GOP.
  for (int i = 0; i < 4; ++i) (void)enc.next_frame(rng);
  const int wait = enc.request_level(1);
  EXPECT_EQ(wait, 6);
  // The next 6 frames still encode at level 3...
  for (int i = 0; i < 6; ++i) EXPECT_EQ(enc.next_frame(rng).level, 3);
  // ...and the first frame of the next GOP actuates level 1 (an I-frame).
  const auto frame = enc.next_frame(rng);
  EXPECT_TRUE(frame.is_i_frame);
  EXPECT_EQ(frame.level, 1);
  EXPECT_EQ(enc.active_level(), 1);
}

TEST(Encoder, SwitchAtBoundaryIsImmediate) {
  EncoderModel enc(config(10), 3);
  util::Rng rng(1);
  for (int i = 0; i < 10; ++i) (void)enc.next_frame(rng);  // full GOP
  EXPECT_EQ(enc.request_level(5), 0);
  EXPECT_EQ(enc.next_frame(rng).level, 5);
}

TEST(Encoder, PendingVsActiveLevels) {
  EncoderModel enc(config(10), 2);
  util::Rng rng(1);
  (void)enc.next_frame(rng);
  enc.request_level(4);
  EXPECT_EQ(enc.active_level(), 2);
  EXPECT_EQ(enc.pending_level(), 4);
}

TEST(Encoder, FrameIndicesMonotone) {
  EncoderModel enc(config(5), 3);
  util::Rng rng(1);
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(enc.next_frame(rng).index, i);
  }
}

TEST(Encoder, MeanFrameSizeFollowsFigure2) {
  EncoderModel enc(config(), 1);
  // 1800 kbps at 30 fps = 60 kbit frames.
  EXPECT_NEAR(enc.mean_frame_kbit(5), 60.0, 1e-9);
  EXPECT_NEAR(enc.mean_frame_kbit(1), 10.0, 1e-9);
}

TEST(Encoder, DegenerateGopOfOne) {
  // Every frame is an I-frame; the normaliser must keep the rate exact.
  EncoderModel enc(config(1, 6.0, 0.0), 3);
  util::Rng rng(1);
  for (int i = 0; i < 5; ++i) {
    const auto frame = enc.next_frame(rng);
    EXPECT_TRUE(frame.is_i_frame);
    EXPECT_NEAR(frame.size_kbit, 800.0 / 30.0, 1e-9);
  }
}

TEST(Encoder, RejectsBadConfig) {
  EXPECT_THROW(EncoderModel(config(0), 3), std::logic_error);
  EXPECT_THROW(EncoderModel(config(10, 0.5), 3), std::logic_error);
  EXPECT_THROW(EncoderModel(config(), 9), std::logic_error);
  EncoderModel enc(config(), 3);
  EXPECT_THROW(enc.request_level(0), std::logic_error);
}

}  // namespace
}  // namespace cloudfog::stream
