#include "stream/queued_sender.h"

#include <gtest/gtest.h>

namespace cloudfog::stream {
namespace {

TEST(QueuedSender, IdleLinkStartsImmediately) {
  QueuedSender sender(1'000.0);
  const auto sched = sender.enqueue(10.0, 500.0);
  EXPECT_DOUBLE_EQ(sched.enqueued, 10.0);
  EXPECT_DOUBLE_EQ(sched.start, 10.0);
  EXPECT_DOUBLE_EQ(sched.end, 510.0);  // 500 kbit at 1 Mbps
  EXPECT_DOUBLE_EQ(sched.queuing_ms(), 0.0);
  EXPECT_DOUBLE_EQ(sched.transmission_ms(), 500.0);
}

TEST(QueuedSender, BusyLinkQueues) {
  QueuedSender sender(1'000.0);
  sender.enqueue(0.0, 1'000.0);  // busy until 1000 ms
  const auto sched = sender.enqueue(200.0, 500.0);
  EXPECT_DOUBLE_EQ(sched.start, 1'000.0);
  EXPECT_DOUBLE_EQ(sched.end, 1'500.0);
  EXPECT_DOUBLE_EQ(sched.queuing_ms(), 800.0);
}

TEST(QueuedSender, LinkFreesAfterBacklogDrains) {
  QueuedSender sender(1'000.0);
  sender.enqueue(0.0, 100.0);  // done at 100 ms
  const auto sched = sender.enqueue(500.0, 100.0);
  EXPECT_DOUBLE_EQ(sched.start, 500.0);  // gap: link was idle
}

TEST(QueuedSender, BacklogTracksOutstandingBits) {
  QueuedSender sender(1'000.0);
  sender.enqueue(0.0, 1'000.0);
  EXPECT_NEAR(sender.backlog_kbit(0.0), 1'000.0, 1e-9);
  EXPECT_NEAR(sender.backlog_kbit(400.0), 600.0, 1e-9);
  EXPECT_DOUBLE_EQ(sender.backlog_kbit(2'000.0), 0.0);
}

TEST(QueuedSender, BusyUntil) {
  QueuedSender sender(1'000.0);
  EXPECT_DOUBLE_EQ(sender.busy_until(5.0), 5.0);
  sender.enqueue(5.0, 100.0);
  EXPECT_DOUBLE_EQ(sender.busy_until(5.0), 105.0);
}

TEST(QueuedSender, RateCapSlowsSegment) {
  QueuedSender sender(10'000.0);
  const auto sched = sender.enqueue(0.0, 100.0, 1'000.0);
  // Capped at 1 Mbps despite the 10 Mbps link.
  EXPECT_DOUBLE_EQ(sched.end, 100.0);
}

TEST(QueuedSender, RateCapAboveCapacityIgnored) {
  QueuedSender sender(1'000.0);
  const auto sched = sender.enqueue(0.0, 100.0, 50'000.0);
  EXPECT_DOUBLE_EQ(sched.end, 100.0);  // link capacity binds
}

TEST(QueuedSender, ZeroSegmentTakesNoTime) {
  QueuedSender sender(1'000.0);
  const auto sched = sender.enqueue(3.0, 0.0);
  EXPECT_DOUBLE_EQ(sched.start, sched.end);
}

TEST(QueuedSender, RejectsTimeTravel) {
  QueuedSender sender(1'000.0);
  sender.enqueue(10.0, 1.0);
  EXPECT_THROW(sender.enqueue(5.0, 1.0), std::logic_error);
}

TEST(QueuedSender, RejectsBadArguments) {
  EXPECT_THROW(QueuedSender(0.0), std::logic_error);
  QueuedSender sender(1'000.0);
  EXPECT_THROW(sender.enqueue(0.0, -1.0), std::logic_error);
}

TEST(QueuedSender, StatsAccumulate) {
  QueuedSender sender(1'000.0);
  sender.enqueue(0.0, 100.0);
  sender.enqueue(1.0, 200.0);
  EXPECT_EQ(sender.segments_sent(), 2u);
  EXPECT_DOUBLE_EQ(sender.total_enqueued_kbit(), 300.0);
}

TEST(SendSchedule, SentByInterpolatesLinearly) {
  SendSchedule sched;
  sched.enqueued = 0.0;
  sched.start = 100.0;
  sched.end = 200.0;
  EXPECT_DOUBLE_EQ(sched.sent_by(50.0, 80.0), 0.0);
  EXPECT_DOUBLE_EQ(sched.sent_by(100.0, 80.0), 0.0);
  EXPECT_DOUBLE_EQ(sched.sent_by(150.0, 80.0), 40.0);
  EXPECT_DOUBLE_EQ(sched.sent_by(200.0, 80.0), 80.0);
  EXPECT_DOUBLE_EQ(sched.sent_by(999.0, 80.0), 80.0);
}

TEST(SendSchedule, InstantTransferFullySentAtEnd) {
  SendSchedule sched;
  sched.start = sched.end = 100.0;
  EXPECT_DOUBLE_EQ(sched.sent_by(100.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(sched.sent_by(99.0, 10.0), 0.0);
}

}  // namespace
}  // namespace cloudfog::stream
