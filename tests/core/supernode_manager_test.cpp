#include "core/supernode_manager.h"

#include <gtest/gtest.h>

namespace cloudfog::core {
namespace {

/// A line of players along the US east coast plus supernodes at known
/// distances, so nearest-qualified choices are predictable.
struct World {
  World() : topo(net::LatencyModel(net::LatencyParams::simulation_profile(1))) {
    // Host 0: the player, Philadelphia-ish.
    player = topo.add_host(net::HostRole::kPlayer, {39.95, -75.16}, 8.0);
    // Close, mid and far supernode hosts (same metro, ~130 km, ~3000 km).
    sn_close = topo.add_host(net::HostRole::kPlayer, {39.96, -75.17}, 10.0,
                             "close", 3.0);
    sn_mid = topo.add_host(net::HostRole::kPlayer, {40.71, -74.00}, 10.0,
                           "mid", 3.0);
    sn_far = topo.add_host(net::HostRole::kPlayer, {34.05, -118.24}, 10.0,
                           "far", 3.0);
  }

  SupernodeManager manager(SupernodeManagerConfig config = {}) {
    config.probe_jitter_sigma = 0.0;  // deterministic probes for tests
    return SupernodeManager(topo, config, util::Rng(9));
  }

  net::Topology topo;
  NodeId player = 0, sn_close = 0, sn_mid = 0, sn_far = 0;
};

TEST(SupernodeManager, RegistryBasics) {
  World world;
  auto mgr = world.manager();
  EXPECT_EQ(mgr.supernode_count(), 0u);
  mgr.add_supernode(world.sn_close, 5, 10'000.0);
  EXPECT_TRUE(mgr.is_supernode(world.sn_close));
  EXPECT_FALSE(mgr.is_supernode(world.sn_far));
  EXPECT_EQ(mgr.record(world.sn_close).capacity, 5);
  EXPECT_EQ(mgr.total_capacity(), 5);
  mgr.remove_supernode(world.sn_close);
  EXPECT_EQ(mgr.supernode_count(), 0u);
}

TEST(SupernodeManager, DuplicateRegistrationRejected) {
  World world;
  auto mgr = world.manager();
  mgr.add_supernode(world.sn_close, 5, 10'000.0);
  EXPECT_THROW(mgr.add_supernode(world.sn_close, 5, 10'000.0), std::logic_error);
}

TEST(SupernodeManager, RemoveUnknownRejected) {
  World world;
  auto mgr = world.manager();
  EXPECT_THROW(mgr.remove_supernode(world.sn_far), std::logic_error);
}

TEST(SupernodeManager, InvalidRegistrationRejected) {
  World world;
  auto mgr = world.manager();
  EXPECT_THROW(mgr.add_supernode(world.sn_close, 0, 10'000.0), std::logic_error);
  EXPECT_THROW(mgr.add_supernode(world.sn_close, 5, 0.0), std::logic_error);
}

TEST(SupernodeManager, AssignsNearestQualified) {
  World world;
  auto mgr = world.manager();
  mgr.add_supernode(world.sn_close, 5, 10'000.0);
  mgr.add_supernode(world.sn_mid, 5, 10'000.0);
  mgr.add_supernode(world.sn_far, 5, 10'000.0);
  const Assignment a = mgr.assign(world.player, 200.0);
  EXPECT_EQ(a.supernode, world.sn_close);
  EXPECT_FALSE(a.direct_to_cloud());
  EXPECT_GT(a.delay_ms, 0.0);
  EXPECT_EQ(mgr.record(world.sn_close).assigned, 1);
}

TEST(SupernodeManager, BackupsAreTheOtherQualifiedCandidates) {
  World world;
  auto mgr = world.manager();
  mgr.add_supernode(world.sn_close, 5, 10'000.0);
  mgr.add_supernode(world.sn_mid, 5, 10'000.0);
  const Assignment a = mgr.assign(world.player, 200.0);
  ASSERT_EQ(a.backups.size(), 1u);
  EXPECT_EQ(a.backups[0], world.sn_mid);
}

TEST(SupernodeManager, LmaxFiltersSlowCandidates) {
  World world;
  auto mgr = world.manager();
  mgr.add_supernode(world.sn_far, 5, 10'000.0);
  // Cross-country one-way latency is way above a 30 ms budget.
  const Assignment a = mgr.assign(world.player, 30.0);
  EXPECT_TRUE(a.direct_to_cloud());
  EXPECT_TRUE(a.backups.empty());
}

TEST(SupernodeManager, CapacityExhaustionFallsToNextCandidate) {
  World world;
  auto mgr = world.manager();
  mgr.add_supernode(world.sn_close, 1, 10'000.0);
  mgr.add_supernode(world.sn_mid, 5, 10'000.0);
  EXPECT_EQ(mgr.assign(world.player, 200.0).supernode, world.sn_close);
  // The close supernode is full now; next assignment takes the mid one and
  // keeps the full one as a backup.
  const Assignment second = mgr.assign(world.player, 200.0);
  EXPECT_EQ(second.supernode, world.sn_mid);
  ASSERT_EQ(second.backups.size(), 1u);
  EXPECT_EQ(second.backups[0], world.sn_close);
}

TEST(SupernodeManager, AllFullMeansDirectToCloud) {
  World world;
  auto mgr = world.manager();
  mgr.add_supernode(world.sn_close, 1, 10'000.0);
  (void)mgr.assign(world.player, 200.0);
  const Assignment a = mgr.assign(world.player, 200.0);
  EXPECT_TRUE(a.direct_to_cloud());
  EXPECT_EQ(mgr.total_assigned(), 1);
}

TEST(SupernodeManager, ReleaseFreesCapacity) {
  World world;
  auto mgr = world.manager();
  mgr.add_supernode(world.sn_close, 1, 10'000.0);
  const Assignment a = mgr.assign(world.player, 200.0);
  mgr.release(a.supernode);
  EXPECT_EQ(mgr.record(world.sn_close).assigned, 0);
  EXPECT_EQ(mgr.assign(world.player, 200.0).supernode, world.sn_close);
}

TEST(SupernodeManager, ReleaseOfCloudIsNoop) {
  World world;
  auto mgr = world.manager();
  mgr.release(kInvalidNode);  // player was direct-to-cloud
}

TEST(SupernodeManager, ReleaseWithoutAssignmentRejected) {
  World world;
  auto mgr = world.manager();
  mgr.add_supernode(world.sn_close, 1, 10'000.0);
  EXPECT_THROW(mgr.release(world.sn_close), std::logic_error);
}

TEST(SupernodeManager, CandidateCountLimitsProbes) {
  // With candidate_count = 1 only the geographically closest supernode is
  // probed; when it is full the player goes to the cloud even though a
  // farther one had room.
  World world;
  SupernodeManagerConfig config;
  config.candidate_count = 1;
  auto mgr = world.manager(config);
  mgr.add_supernode(world.sn_close, 1, 10'000.0);
  mgr.add_supernode(world.sn_mid, 5, 10'000.0);
  (void)mgr.assign(world.player, 200.0);
  EXPECT_TRUE(mgr.assign(world.player, 200.0).direct_to_cloud());
}

TEST(SupernodeManager, EmptyRosterGoesDirectToCloud) {
  World world;
  auto mgr = world.manager();
  EXPECT_TRUE(mgr.assign(world.player, 100.0).direct_to_cloud());
}

TEST(SupernodeManager, ServerInterfaceUsedForProbes) {
  // The close supernode's client access is slow (10 ms) but its server
  // interface is 3 ms; a tight budget that only the wired path satisfies
  // must still qualify it.
  World world;
  auto mgr = world.manager();
  mgr.add_supernode(world.sn_close, 5, 10'000.0);
  const TimeMs wired =
      world.topo.expected_server_one_way_ms(world.sn_close, world.player);
  const TimeMs unwired =
      world.topo.expected_one_way_ms(world.sn_close, world.player);
  ASSERT_LT(wired, unwired);
  const Assignment a = mgr.assign(world.player, wired + 0.01);
  EXPECT_EQ(a.supernode, world.sn_close);
}

TEST(SupernodeManager, RejectsNonPositiveLmax) {
  World world;
  auto mgr = world.manager();
  EXPECT_THROW(mgr.assign(world.player, 0.0), std::logic_error);
}

}  // namespace
}  // namespace cloudfog::core
