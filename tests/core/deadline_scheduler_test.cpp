#include "core/deadline_scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace cloudfog::core {
namespace {

DeadlineSchedulerConfig config() {
  DeadlineSchedulerConfig c;
  c.decay_lambda_per_s = 1.0;
  c.propagation_history = 10;
  c.max_queue_segments = 100;
  c.default_propagation_ms = 20.0;
  return c;
}

stream::VideoSegment make_segment(std::uint64_t id, NodeId player,
                                  game::GameId game, Kbit size,
                                  TimeMs action_ms) {
  stream::VideoSegment seg;
  seg.id = id;
  seg.player = player;
  seg.game = game;
  seg.quality_level = 3;
  seg.duration_ms = 33.3;
  seg.size_kbit = size;
  seg.action_time_ms = action_ms;
  seg.deadline_ms = action_ms + game::game_by_id(game).latency_requirement_ms;
  seg.loss_tolerance = game::game_by_id(game).loss_tolerance;
  return seg;
}

TEST(AllocateDrops, ProportionalToWeights) {
  // Weights 3:1 over 8 drops -> 6 and 2.
  const auto shares = allocate_drops({3.0, 1.0}, 8);
  EXPECT_EQ(shares, (std::vector<int>{6, 2}));
}

TEST(AllocateDrops, ZeroTotal) {
  EXPECT_EQ(allocate_drops({1.0, 2.0}, 0), (std::vector<int>{0, 0}));
}

TEST(AllocateDrops, ZeroWeightGetsNothing) {
  const auto shares = allocate_drops({0.0, 1.0}, 5);
  EXPECT_EQ(shares[0], 0);
  EXPECT_EQ(shares[1], 5);
}

TEST(AllocateDrops, AllZeroWeightsNoDrops) {
  EXPECT_EQ(allocate_drops({0.0, 0.0}, 5), (std::vector<int>{0, 0}));
}

TEST(AllocateDrops, Equation14WorkedValues) {
  // Section III-C example setup: tolerances 0.6/0.2/0.5 with decay factors
  // 0.5/0.1/0.2 give weights 0.30/0.02/0.10 and D = 6. Strict Eq (14)
  // rounding yields 4/0/1 (the paper's quoted 3/2/1 does not satisfy its
  // own formula; see DESIGN.md).
  const auto shares = allocate_drops({0.6 * 0.5, 0.2 * 0.1, 0.5 * 0.2}, 6);
  EXPECT_EQ(shares, (std::vector<int>{4, 0, 1}));
}

TEST(AllocateDrops, RejectsNegative) {
  EXPECT_THROW(allocate_drops({-1.0}, 3), std::logic_error);
  EXPECT_THROW(allocate_drops({1.0}, -1), std::logic_error);
}

TEST(DeadlineScheduler, PopsInExpectedArrivalOrder) {
  DeadlineScheduler sched(100'000.0, config());
  // Game 4 (110 ms requirement) enqueued before game 0 (30 ms): the tighter
  // deadline must transmit first despite arriving later.
  sched.enqueue(make_segment(1, 10, 4, 12.0, 0.0), 0.0);  // deadline 110
  sched.enqueue(make_segment(2, 11, 0, 12.0, 0.0), 0.0);  // deadline 30
  auto first = sched.pop_packet(0.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->player, 11u);
  auto second = sched.pop_packet(0.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->player, 10u);
}

TEST(DeadlineScheduler, EqualDeadlinesOrderById) {
  DeadlineScheduler sched(100'000.0, config());
  sched.enqueue(make_segment(5, 10, 2, 12.0, 0.0), 0.0);
  sched.enqueue(make_segment(3, 11, 2, 12.0, 0.0), 0.0);
  EXPECT_EQ(sched.pop_packet(0.0)->player, 11u);  // id 3 first
}

TEST(DeadlineScheduler, PacketsWithinSegmentInOrder) {
  DeadlineScheduler sched(100'000.0, config());
  sched.enqueue(make_segment(1, 10, 4, 36.0, 0.0), 0.0);  // 3 packets
  for (int i = 0; i < 3; ++i) {
    auto p = sched.pop_packet(0.0);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->packet.index, i);
  }
  EXPECT_FALSE(sched.pop_packet(0.0).has_value());
  EXPECT_TRUE(sched.empty());
}

TEST(DeadlineScheduler, Equation13PropagationAverage) {
  DeadlineScheduler sched(100'000.0, config());
  EXPECT_DOUBLE_EQ(sched.estimated_propagation_ms(7), 20.0);  // default
  sched.record_propagation(7, 10.0);
  sched.record_propagation(7, 30.0);
  EXPECT_DOUBLE_EQ(sched.estimated_propagation_ms(7), 20.0);
  sched.record_propagation(7, 50.0);
  EXPECT_DOUBLE_EQ(sched.estimated_propagation_ms(7), 30.0);
}

TEST(DeadlineScheduler, Equation13WindowOfMSamples) {
  auto c = config();
  c.propagation_history = 3;
  DeadlineScheduler sched(100'000.0, c);
  for (double v : {100.0, 1.0, 2.0, 3.0}) sched.record_propagation(7, v);
  // The window keeps the last 3 samples: (1+2+3)/3.
  EXPECT_DOUBLE_EQ(sched.estimated_propagation_ms(7), 2.0);
}

TEST(DeadlineScheduler, Equation12ArrivalEstimate) {
  // Uplink 12 kbps -> one 12-kbit packet per second.
  auto c = config();
  c.default_propagation_ms = 50.0;
  DeadlineScheduler sched(12.0, c);
  // Two segments with relaxed deadlines so no drops occur: sizes 24, 12.
  auto a = make_segment(1, 10, 4, 24.0, 0.0);
  a.deadline_ms = 1e9;
  auto b = make_segment(2, 11, 4, 12.0, 0.0);
  b.deadline_ms = 1e9 + 1;
  sched.enqueue(a, 0.0);
  sched.enqueue(b, 0.0);
  // Position 0: l_q = 0, l_t = 2000 ms, l_p = 50.
  EXPECT_NEAR(sched.estimated_arrival_ms(0, 0.0), 2'050.0, 1e-6);
  // Position 1: l_q = 2000, l_t = 1000, l_p = 50.
  EXPECT_NEAR(sched.estimated_arrival_ms(1, 0.0), 3'050.0, 1e-6);
}

TEST(DeadlineScheduler, DropsWhenPredictedLate) {
  // Uplink 120 kbps: a 12-kbit packet takes 100 ms. Deadline 110 ms with
  // 20 ms propagation: a 3-packet segment (300 ms transmission) cannot make
  // it; the scheduler must shed packets.
  DeadlineScheduler sched(120.0, config());
  auto seg = make_segment(1, 10, 4, 36.0, 0.0);
  sched.enqueue(seg, 0.0);
  EXPECT_GT(sched.total_dropped_packets(), 0u);
}

TEST(DeadlineScheduler, NoDropsWhenFeasible) {
  DeadlineScheduler sched(10'000.0, config());
  sched.enqueue(make_segment(1, 10, 4, 36.0, 0.0), 0.0);
  EXPECT_EQ(sched.total_dropped_packets(), 0u);
}

TEST(DeadlineScheduler, DropsCappedByLossToleranceBudget) {
  // Game 0's loss tolerance is 0.2: at most floor(0.2 * packets) may drop
  // from its segment no matter how late it is.
  DeadlineScheduler sched(60.0, config());
  auto seg = make_segment(1, 10, 0, 120.0, 0.0);  // 10 packets, hopeless
  sched.enqueue(seg, 0.0);
  EXPECT_LE(sched.total_dropped_packets(), 2u);
}

TEST(DeadlineScheduler, ToleranceWeightedDropShares) {
  // Two queued segments, one from a loss-tolerant game (0.6) and one from a
  // strict game (0.2): the tolerant segment sheds more packets.
  auto c = config();
  c.default_propagation_ms = 5.0;
  DeadlineScheduler sched(1'200.0, c);  // 10 ms per packet
  std::vector<std::pair<std::uint64_t, int>> drops;
  sched.set_drop_observer([&](const stream::VideoSegment& seg, int index) {
    drops.emplace_back(seg.id, index);
  });
  auto tolerant = make_segment(1, 10, 4, 120.0, 0.0);  // 10 pkts, tol 0.6
  tolerant.deadline_ms = 200.0;
  auto strict = make_segment(2, 11, 0, 120.0, 0.0);    // 10 pkts, tol 0.2
  strict.deadline_ms = 201.0;
  sched.enqueue(tolerant, 0.0);
  sched.enqueue(strict, 0.0);
  int from_tolerant = 0, from_strict = 0;
  for (const auto& [id, index] : drops) {
    if (id == 1) ++from_tolerant;
    if (id == 2) ++from_strict;
  }
  EXPECT_GT(from_tolerant, from_strict);
  EXPECT_EQ(static_cast<std::uint64_t>(from_tolerant + from_strict),
            sched.total_dropped_packets());
}

TEST(DeadlineScheduler, DroppedPacketsSkippedByPop) {
  DeadlineScheduler sched(120.0, config());
  auto seg = make_segment(1, 10, 4, 36.0, 0.0);  // 3 packets, will drop tail
  sched.enqueue(seg, 0.0);
  const auto dropped = sched.total_dropped_packets();
  ASSERT_GT(dropped, 0u);
  std::size_t popped = 0;
  while (sched.pop_packet(0.0).has_value()) ++popped;
  EXPECT_EQ(popped + dropped, 3u);
}

TEST(DeadlineScheduler, BufferOverflowDiscardsWholeSegment) {
  auto c = config();
  c.max_queue_segments = 2;
  DeadlineScheduler sched(100'000.0, c);
  EXPECT_TRUE(sched.enqueue(make_segment(1, 10, 4, 12.0, 0.0), 0.0));
  EXPECT_TRUE(sched.enqueue(make_segment(2, 10, 4, 12.0, 0.0), 0.0));
  EXPECT_FALSE(sched.enqueue(make_segment(3, 10, 4, 12.0, 0.0), 0.0));
  EXPECT_EQ(sched.total_overflow_segments(), 1u);
  EXPECT_EQ(sched.queued_segments(), 2u);
}

TEST(DeadlineScheduler, QueuedPacketCounts) {
  DeadlineScheduler sched(100'000.0, config());
  sched.enqueue(make_segment(1, 10, 4, 36.0, 0.0), 0.0);  // 3 packets
  sched.enqueue(make_segment(2, 11, 4, 12.0, 0.0), 0.0);  // 1 packet
  EXPECT_EQ(sched.queued_packets(), 4u);
  EXPECT_FALSE(sched.empty());
  (void)sched.pop_packet(0.0);
  EXPECT_EQ(sched.queued_packets(), 3u);
}

TEST(DeadlineScheduler, DecayFavorsDroppingFresherSegments) {
  // phi = e^(-lambda * wait): a segment queued for a long time has low phi
  // and is protected relative to an equal-tolerance fresh one. Construction:
  // A (old, waited 2 s) and B (fresh) precede a large fresh segment C whose
  // deadline is blown; Eq (14) must shed more from B than from A.
  auto c = config();
  c.default_propagation_ms = 5.0;
  DeadlineScheduler sched(1'200.0, c);  // 10 ms per packet
  std::vector<std::uint64_t> dropped_ids;
  sched.set_drop_observer([&](const stream::VideoSegment& seg, int) {
    dropped_ids.push_back(seg.id);
  });
  auto seg_a = make_segment(1, 10, 4, 120.0, 0.0);  // 10 packets
  seg_a.deadline_ms = 2'500.0;
  sched.enqueue(seg_a, 0.0);
  EXPECT_TRUE(dropped_ids.empty());
  auto seg_b = make_segment(2, 11, 4, 120.0, 2'000.0);  // 10 packets
  seg_b.deadline_ms = 2'600.0;
  sched.enqueue(seg_b, 2'000.0);
  EXPECT_TRUE(dropped_ids.empty());
  auto seg_c = make_segment(3, 12, 4, 600.0, 2'000.0);  // 50 packets
  seg_c.deadline_ms = 2'610.0;  // predicted arrival ~2705: late
  sched.enqueue(seg_c, 2'000.0);
  int from_a = 0, from_b = 0;
  for (auto id : dropped_ids) {
    if (id == 1) ++from_a;
    if (id == 2) ++from_b;
  }
  EXPECT_GT(sched.total_dropped_packets(), 0u);
  EXPECT_GT(from_b, from_a);
}

TEST(DeadlineScheduler, RejectsBadConfig) {
  EXPECT_THROW(DeadlineScheduler(0.0, config()), std::logic_error);
  auto c = config();
  c.propagation_history = 0;
  EXPECT_THROW(DeadlineScheduler(1'000.0, c), std::logic_error);
  auto c2 = config();
  c2.max_queue_segments = 0;
  EXPECT_THROW(DeadlineScheduler(1'000.0, c2), std::logic_error);
}

TEST(DeadlineScheduler, RejectsNegativePropagation) {
  DeadlineScheduler sched(1'000.0, config());
  EXPECT_THROW(sched.record_propagation(1, -1.0), std::logic_error);
}

}  // namespace
}  // namespace cloudfog::core
