// Exactness tests for the geographic grid index: nearest_k must return
// exactly what a brute-force (distance, id) sort would — same doubles, same
// ties, same order — across churn, duplicate positions, and every k.
#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/geo_grid.h"
#include "core/supernode_manager.h"
#include "net/geo.h"
#include "net/topology.h"
#include "util/rng.h"

namespace cloudfog::core {
namespace {

net::GeoPoint random_us_point(util::Rng& rng) {
  return net::GeoPoint{rng.uniform(25.0, 49.0), rng.uniform(-124.0, -67.0)};
}

std::vector<std::pair<double, NodeId>> brute_nearest_k(
    const std::vector<std::pair<NodeId, net::GeoPoint>>& members,
    const net::GeoPoint& from, std::size_t k) {
  std::vector<std::pair<double, NodeId>> all;
  all.reserve(members.size());
  for (const auto& [id, pos] : members)
    all.emplace_back(net::haversine_km(from, pos), id);
  std::sort(all.begin(), all.end());
  if (all.size() > k) all.resize(k);
  return all;
}

TEST(GeoGridTest, NearestKMatchesBruteForceAcrossSeedsAndSizes) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    for (std::size_t n : {1u, 3u, 17u, 64u, 200u}) {
      util::Rng rng(seed * 1000 + n);
      GeoGrid grid;
      std::vector<std::pair<NodeId, net::GeoPoint>> members;
      for (std::size_t i = 0; i < n; ++i) {
        const auto id = static_cast<NodeId>(rng.uniform_int(0, 1'000'000));
        if (std::any_of(members.begin(), members.end(),
                        [id](const auto& m) { return m.first == id; }))
          continue;
        const net::GeoPoint pos = random_us_point(rng);
        grid.insert(id, pos);
        members.emplace_back(id, pos);
      }
      for (std::size_t k : {1u, 2u, 8u, 64u, 500u}) {
        std::vector<std::pair<double, NodeId>> got;
        const net::GeoPoint from = random_us_point(rng);
        grid.nearest_k(from, k, got);
        EXPECT_EQ(got, brute_nearest_k(members, from, k))
            << "seed=" << seed << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST(GeoGridTest, DistanceTiesBreakByAscendingId) {
  GeoGrid grid;
  const net::GeoPoint shared{40.0, -90.0};
  // Insert in descending id order so insertion order cannot mask the tie
  // break.
  for (NodeId id : {9u, 7u, 5u, 3u, 1u}) grid.insert(id, shared);
  grid.insert(100, {41.0, -90.0});

  std::vector<std::pair<double, NodeId>> got;
  grid.nearest_k({40.0, -95.0}, 3, got);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].second, 1u);
  EXPECT_EQ(got[1].second, 3u);
  EXPECT_EQ(got[2].second, 5u);
  EXPECT_EQ(got[0].first, got[2].first);
}

TEST(GeoGridTest, RemovalKeepsResultsExact) {
  util::Rng rng(99);
  GeoGrid grid;
  std::vector<std::pair<NodeId, net::GeoPoint>> members;
  for (NodeId id = 0; id < 120; ++id) {
    const net::GeoPoint pos = random_us_point(rng);
    grid.insert(id, pos);
    members.emplace_back(id, pos);
  }
  // Churn: remove members spread across cells, re-query after each batch.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 7 && !members.empty(); ++i) {
      const std::size_t victim = rng.index(members.size());
      grid.remove(members[victim].first);
      members.erase(members.begin() +
                    static_cast<std::ptrdiff_t>(victim));
    }
    const net::GeoPoint from = random_us_point(rng);
    std::vector<std::pair<double, NodeId>> got;
    grid.nearest_k(from, 8, got);
    EXPECT_EQ(got, brute_nearest_k(members, from, 8)) << "round " << round;
  }
  EXPECT_EQ(grid.size(), members.size());
}

TEST(GeoGridTest, FarAwayQueryStillFindsEverything) {
  // Query from far outside the member envelope: the ring walk must expand
  // to the envelope instead of giving up, and the prune bound must not cut
  // off the only occupied cells.
  GeoGrid grid;
  grid.insert(1, {25.5, -80.2});   // Miami
  grid.insert(2, {47.6, -122.3});  // Seattle
  std::vector<std::pair<double, NodeId>> got;
  grid.nearest_k({49.0, -67.0}, 2, got);  // NE corner, empty cell
  ASSERT_EQ(got.size(), 2u);
  const double d1 = net::haversine_km({49.0, -67.0}, {25.5, -80.2});
  const double d2 = net::haversine_km({49.0, -67.0}, {47.6, -122.3});
  EXPECT_EQ(got[0], (std::pair<double, NodeId>{std::min(d1, d2),
                                               d1 < d2 ? 1u : 2u}));
  EXPECT_EQ(got[1], (std::pair<double, NodeId>{std::max(d1, d2),
                                               d1 < d2 ? 2u : 1u}));
}

TEST(GeoGridTest, AntimeridianNeighborIsNotPrunedAway) {
  // Query at lon -179: the member at +179 is ~222 km away but 179 raw cells
  // distant, while two decoys fill k within a dozen rings. A prune bound
  // built from raw longitude gaps alone breaks the walk around ring 11 and
  // never reaches the wrapped neighbor.
  GeoGrid grid;
  grid.insert(1, {0.0, 179.0});
  grid.insert(2, {0.0, -170.0});
  grid.insert(3, {0.0, -160.0});
  const std::vector<std::pair<NodeId, net::GeoPoint>> members = {
      {1, {0.0, 179.0}}, {2, {0.0, -170.0}}, {3, {0.0, -160.0}}};
  const net::GeoPoint from{0.0, -179.0};
  std::vector<std::pair<double, NodeId>> got;
  grid.nearest_k(from, 2, got);
  EXPECT_EQ(got, brute_nearest_k(members, from, 2));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].second, 1u);  // the wrapped neighbor is the closest
}

TEST(GeoGridTest, NearestKAcrossAntimeridianMatchesBruteForce) {
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    util::Rng rng(seed);
    GeoGrid grid;
    std::vector<std::pair<NodeId, net::GeoPoint>> members;
    for (NodeId id = 0; id < 150; ++id) {
      double lon = 165.0 + rng.uniform(0.0, 30.0);  // straddles +/-180
      if (lon >= 180.0) lon -= 360.0;
      const net::GeoPoint pos{rng.uniform(-55.0, 55.0), lon};
      grid.insert(id, pos);
      members.emplace_back(id, pos);
    }
    for (std::size_t k : {1u, 3u, 8u, 32u}) {
      for (int q = 0; q < 8; ++q) {
        double lon = 165.0 + rng.uniform(0.0, 30.0);
        if (lon >= 180.0) lon -= 360.0;
        const net::GeoPoint from{rng.uniform(-55.0, 55.0), lon};
        std::vector<std::pair<double, NodeId>> got;
        grid.nearest_k(from, k, got);
        EXPECT_EQ(got, brute_nearest_k(members, from, k))
            << "seed=" << seed << " k=" << k << " q=" << q;
      }
    }
  }
}

// The manager-level guarantee: assignments with the spatial index are
// indistinguishable from the exhaustive scan — same chosen supernode, same
// delay doubles, same backups, same RNG consumption — across seeds and
// roster sizes, including capacity churn.
TEST(GeoGridTest, AssignWithIndexMatchesBruteForceScan) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    for (std::size_t roster : {2u, 9u, 40u, 150u}) {
      net::PlacementConfig pc;
      pc.seed = seed;
      pc.num_players = roster + 60;
      pc.num_edge_servers = 0;
      pc.num_datacenters = 1;
      net::Topology topo = net::build_topology(
          pc, net::LatencyParams::simulation_profile(seed));
      const auto players = topo.hosts_with_role(net::HostRole::kPlayer);

      SupernodeManagerConfig grid_cfg;
      grid_cfg.use_spatial_index = true;
      SupernodeManagerConfig brute_cfg = grid_cfg;
      brute_cfg.use_spatial_index = false;
      SupernodeManager with_grid(topo, grid_cfg, util::Rng(seed * 7));
      SupernodeManager brute(topo, brute_cfg, util::Rng(seed * 7));
      for (std::size_t i = 0; i < roster; ++i) {
        with_grid.add_supernode(players[i], 2, 10'000.0);
        brute.add_supernode(players[i], 2, 10'000.0);
      }

      // Tight-ish threshold so some assignments go direct-to-cloud and the
      // capacity of near supernodes fills up (exercising backups).
      for (std::size_t i = roster; i < players.size(); ++i) {
        const Assignment a = with_grid.assign(players[i], 40.0);
        const Assignment b = brute.assign(players[i], 40.0);
        EXPECT_EQ(a.supernode, b.supernode);
        EXPECT_EQ(a.delay_ms, b.delay_ms);
        EXPECT_EQ(a.backups, b.backups);
      }
      EXPECT_EQ(with_grid.total_assigned(), brute.total_assigned());
    }
  }
}

TEST(GeoGridTest, RemoveSupernodeWithAssignedPlayersThrows) {
  net::PlacementConfig pc;
  pc.seed = 4;
  pc.num_players = 4;
  pc.num_datacenters = 1;
  net::Topology topo =
      net::build_topology(pc, net::LatencyParams::simulation_profile(4));
  const auto players = topo.hosts_with_role(net::HostRole::kPlayer);

  SupernodeManagerConfig cfg;
  cfg.probe_jitter_sigma = 0.0;
  SupernodeManager mgr(topo, cfg, util::Rng(1));
  mgr.add_supernode(players[0], 4, 10'000.0);
  const Assignment a = mgr.assign(players[1], 1'000.0);
  ASSERT_EQ(a.supernode, players[0]);

  EXPECT_THROW(mgr.remove_supernode(players[0]), std::logic_error);
  mgr.release(players[0]);
  mgr.remove_supernode(players[0]);  // now fine
  EXPECT_EQ(mgr.supernode_count(), 0u);
}

}  // namespace
}  // namespace cloudfog::core
