#include "core/reputation.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cloudfog::core {
namespace {

TEST(Reputation, UnseenSupernodeGetsPriorMean) {
  ReputationSystem rep;
  // Prior: 8 good / 2 bad -> 0.8.
  EXPECT_NEAR(rep.score(1), 0.8, 1e-12);
  EXPECT_EQ(rep.observations(1), 0u);
  EXPECT_FALSE(rep.should_evict(1));
}

TEST(Reputation, GoodReportsRaiseScore) {
  ReputationSystem rep;
  const double before = rep.score(1);
  for (int i = 0; i < 50; ++i) rep.report(1, true);
  EXPECT_GT(rep.score(1), before);
  EXPECT_GT(rep.score(1), 0.95);
}

TEST(Reputation, BadReportsLowerScore) {
  ReputationSystem rep;
  for (int i = 0; i < 50; ++i) rep.report(1, false);
  EXPECT_LT(rep.score(1), 0.2);
}

TEST(Reputation, EvictionRequiresConfidence) {
  ReputationConfig config;
  config.min_observations = 30;
  ReputationSystem rep(config);
  for (int i = 0; i < 29; ++i) rep.report(1, false);
  EXPECT_FALSE(rep.should_evict(1));  // score low, but not enough reports
  rep.report(1, false);
  EXPECT_TRUE(rep.should_evict(1));
}

TEST(Reputation, HonestNodeWithBackgroundFailuresSurvives) {
  util::Rng rng(1);
  ReputationSystem rep;
  for (int i = 0; i < 2'000; ++i) rep.report(1, !rng.bernoulli(0.03));
  EXPECT_GT(rep.score(1), 0.9);
  EXPECT_FALSE(rep.should_evict(1));
}

TEST(Reputation, SaboteurIsCaught) {
  util::Rng rng(2);
  ReputationSystem rep;
  for (int i = 0; i < 2'000; ++i) rep.report(1, !rng.bernoulli(0.5));
  EXPECT_TRUE(rep.should_evict(1));
}

TEST(Reputation, ForgettingLetsANodeRecover) {
  ReputationConfig config;
  config.forgetting = 0.98;  // short memory for the test
  ReputationSystem rep(config);
  for (int i = 0; i < 200; ++i) rep.report(1, false);
  EXPECT_TRUE(rep.should_evict(1));
  for (int i = 0; i < 400; ++i) rep.report(1, true);
  EXPECT_FALSE(rep.should_evict(1));
  EXPECT_GT(rep.score(1), 0.8);
}

TEST(Reputation, WithoutForgettingHistoryDominates) {
  ReputationConfig config;
  config.forgetting = 1.0;
  ReputationSystem rep(config);
  for (int i = 0; i < 500; ++i) rep.report(1, false);
  for (int i = 0; i < 500; ++i) rep.report(1, true);
  EXPECT_NEAR(rep.score(1), 0.5, 0.02);
}

TEST(Reputation, EvictionsListsOnlyFlaggedNodes) {
  ReputationSystem rep;
  for (int i = 0; i < 100; ++i) {
    rep.report(1, false);  // saboteur
    rep.report(2, true);   // honest
  }
  const auto evictions = rep.evictions();
  ASSERT_EQ(evictions.size(), 1u);
  EXPECT_EQ(evictions[0], 1u);
}

TEST(Reputation, ResetForgetsEverything) {
  ReputationSystem rep;
  for (int i = 0; i < 100; ++i) rep.report(1, false);
  rep.reset(1);
  EXPECT_NEAR(rep.score(1), 0.8, 1e-12);
  EXPECT_FALSE(rep.should_evict(1));
  EXPECT_EQ(rep.tracked(), 0u);
}

TEST(Reputation, IndependentLedgersPerSupernode) {
  ReputationSystem rep;
  for (int i = 0; i < 50; ++i) {
    rep.report(1, false);
    rep.report(2, true);
  }
  EXPECT_LT(rep.score(1), 0.4);
  EXPECT_GT(rep.score(2), 0.9);
}

TEST(Reputation, RejectsBadConfig) {
  ReputationConfig bad;
  bad.prior_good = 0.0;
  EXPECT_THROW(ReputationSystem{bad}, std::logic_error);
  ReputationConfig bad2;
  bad2.eviction_threshold = 1.5;
  EXPECT_THROW(ReputationSystem{bad2}, std::logic_error);
  ReputationConfig bad3;
  bad3.forgetting = 0.0;
  EXPECT_THROW(ReputationSystem{bad3}, std::logic_error);
}

}  // namespace
}  // namespace cloudfog::core
