// SupernodeManager x EdgeCacheService churn coupling — DESIGN.md §11.
//
// With a cache service attached, the directory provisions a per-node cache
// on registration and tears the node's cache state down on departure:
// entries freed, in-flight transcode/fetch jobs cancelled through the slab
// engine's O(1) cancel, and nothing of the node observable afterwards.
#include <gtest/gtest.h>

#include <stdexcept>

#include "cache/edge_cache_service.h"
#include "core/supernode_manager.h"
#include "sim/simulator.h"
#include "stream/video.h"

namespace cloudfog::core {
namespace {

struct World {
  World() : topo(net::LatencyModel(net::LatencyParams::simulation_profile(1))) {
    sn_a = topo.add_host(net::HostRole::kPlayer, {39.96, -75.17}, 10.0,
                         "a", 3.0);
    sn_b = topo.add_host(net::HostRole::kPlayer, {40.71, -74.00}, 10.0,
                         "b", 3.0);
  }

  SupernodeManager manager(SupernodeManagerConfig config = {}) {
    config.probe_jitter_sigma = 0.0;
    return SupernodeManager(topo, config, util::Rng(9));
  }

  net::Topology topo;
  NodeId sn_a = 0, sn_b = 0;
};

stream::VideoSegment segment() {
  stream::VideoSegment seg;
  seg.id = 1;
  seg.player = 500;
  seg.game = 0;
  seg.quality_level = 3;
  seg.duration_ms = 100.0;
  seg.size_kbit = 80.0;
  seg.action_time_ms = 0.0;
  seg.deadline_ms = 70.0;
  return seg;
}

TEST(SupernodeManagerCache, RegistrationProvisionsTheNodeCache) {
  World world;
  sim::Simulator sim;
  cache::EdgeCacheServiceConfig cfg;
  cfg.kbit_per_slot = 500.0;
  cache::EdgeCacheService service(sim, cfg);

  auto mgr = world.manager();
  mgr.attach_cache(&service);
  mgr.add_supernode(world.sn_a, 4, 10'000.0);
  ASSERT_TRUE(service.has_supernode(world.sn_a));
  // Capacity follows the directory's slot count.
  EXPECT_DOUBLE_EQ(service.node_cache(world.sn_a).capacity_kbit(), 2'000.0);
}

TEST(SupernodeManagerCache, DepartureReleasesCacheStateAndCancelsJobs) {
  World world;
  sim::Simulator sim;
  cache::EdgeCacheService service(sim, cache::EdgeCacheServiceConfig{});
  auto mgr = world.manager();
  mgr.attach_cache(&service);
  mgr.add_supernode(world.sn_a, 4, 10'000.0);
  mgr.add_supernode(world.sn_b, 2, 10'000.0);

  // Populate node A's cache and leave a fetch in flight.
  int delivered = 0;
  service.request(world.sn_a, segment(), [&] { ++delivered; });
  ASSERT_EQ(service.transcoder().in_flight(world.sn_a), 1u);

  mgr.remove_supernode(world.sn_a);
  // No cache entry (nor job) outlives its owning supernode...
  EXPECT_FALSE(service.has_supernode(world.sn_a));
  EXPECT_EQ(service.transcoder().in_flight(world.sn_a), 0u);
  EXPECT_THROW(service.node_cache(world.sn_a), std::logic_error);
  // ...and the survivor is untouched.
  EXPECT_TRUE(service.has_supernode(world.sn_b));
  sim.run_until(1'000.0);
  EXPECT_EQ(delivered, 0);  // the cancelled fetch never completed
  EXPECT_EQ(service.totals().cancelled_jobs, 1u);
}

TEST(SupernodeManagerCache, AttachAfterRegistrationRejected) {
  World world;
  sim::Simulator sim;
  cache::EdgeCacheService service(sim, cache::EdgeCacheServiceConfig{});
  auto mgr = world.manager();
  mgr.add_supernode(world.sn_a, 4, 10'000.0);
  EXPECT_THROW(mgr.attach_cache(&service), std::logic_error);
}

TEST(SupernodeManagerCache, DetachedManagerLeavesServiceAlone) {
  World world;
  sim::Simulator sim;
  cache::EdgeCacheService service(sim, cache::EdgeCacheServiceConfig{});
  auto mgr = world.manager();  // never attached
  mgr.add_supernode(world.sn_a, 4, 10'000.0);
  EXPECT_FALSE(service.has_supernode(world.sn_a));
  mgr.remove_supernode(world.sn_a);
}

}  // namespace
}  // namespace cloudfog::core
