// Burst-transmission equivalence oracle (DESIGN.md §14): a burst train may
// only skip event-queue round trips nothing could observe, so a sender with
// set_burst_limit(1) — which reproduces the old one-event-per-packet
// timeline exactly — must emit a bit-identical delivery stream to the
// unlimited default. Randomised multi-player load under both disciplines,
// with loss, WAN rate caps and (under kDeadline) scheduler drops in play;
// digests fold the raw IEEE-754 bits of every delivery, so EXPECT_EQ is an
// exact-timeline comparison, not a tolerance.
#include "core/supernode_sender.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "game/game.h"
#include "sim/simulator.h"
#include "stream/video.h"
#include "util/rng.h"

namespace cloudfog::core {
namespace {

void fold(std::uint64_t& digest, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    digest ^= (value >> shift) & 0xffull;
    digest *= 1099511628211ull;  // FNV-1a prime
  }
}

/// Runs one randomised scenario and digests every delivery and drop.
std::uint64_t run_scenario(SupernodeSender::Discipline discipline,
                           std::uint64_t seed, std::size_t burst_limit) {
  const std::size_t players = 12;
  const double duration_ms = 1'500.0;
  const double interval_ms = 33.3;
  const Kbps uplink_kbps = 140'000.0;

  sim::Simulator sim;
  std::uint64_t digest = 14695981039346656037ull;  // FNV-1a offset basis
  util::Rng load_rng(seed * 1000003 + 17);

  SupernodeSender sender(
      sim, uplink_kbps, discipline, DeadlineSchedulerConfig{},
      [](NodeId player, util::Rng& rng) {
        return 4.0 + rng.uniform(0.0, 4.0) +
               0.1 * static_cast<double>(player % 7);
      },
      [&digest](const PacketDelivery& d) {
        fold(digest, d.segment_id);
        fold(digest, static_cast<std::uint64_t>(d.packet_index));
        fold(digest, std::bit_cast<std::uint64_t>(d.sent_ms));
        fold(digest, std::bit_cast<std::uint64_t>(
                         d.lost ? d.deadline_ms : d.arrival_ms));
        fold(digest, d.lost ? 1 : 0);
      },
      util::Rng(seed).fork("burst_oracle"));
  sender.set_burst_limit(burst_limit);
  sender.set_rate_cap([uplink_kbps](NodeId player, std::uint64_t) {
    return player % 4 == 0 ? uplink_kbps / 2.0 : 0.0;
  });
  sender.set_loss_model(
      [](NodeId player, std::uint64_t) { return player % 5 == 0 ? 0.02 : 0.0; });
  sender.set_drop_observer(
      [&digest](const stream::VideoSegment& seg, int packet_index) {
        fold(digest, seg.id);
        fold(digest, static_cast<std::uint64_t>(packet_index));
        fold(digest, 0xd0ull);  // domain-separate drops from deliveries
      });

  // Sustained near-saturation load with periodic overload spikes, submitted
  // from inside sim events so trains actually form between rounds.
  std::uint64_t round = 0;
  sim::EventId ticker = sim::kInvalidEvent;
  ticker = sim.schedule_every(interval_ms, interval_ms, [&] {
    const TimeMs now = sim.now();
    if (now >= duration_ms) {  // stop generating; let the queue drain
      sim.cancel(ticker);
      return;
    }
    ++round;
    const double burst = round % 6 == 0 ? 2.0 : 1.0;
    for (std::size_t p = 0; p < players; ++p) {
      const game::GameProfile& game =
          game::game_by_id(static_cast<game::GameId>(p % 5));
      stream::VideoSegment seg;
      seg.id = round * 1000 + p;
      seg.player = static_cast<NodeId>(p + 1);
      seg.game = static_cast<game::GameId>(p % 5);
      seg.quality_level = 3;
      seg.duration_ms = interval_ms;
      seg.size_kbit = load_rng.uniform(240.0, 420.0) * burst;
      seg.action_time_ms = now;
      seg.deadline_ms = now + game.latency_requirement_ms;
      seg.loss_tolerance = game.loss_tolerance;
      sender.submit(seg);
    }
  });
  sim.run_all();
  EXPECT_EQ(sender.packets_sent() + sender.packets_dropped(),
            sender.packets_submitted());
  return digest;
}

TEST(SenderBurstOracle, DeadlineDisciplineMatchesPerPacketTimeline) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const std::uint64_t per_packet =
        run_scenario(SupernodeSender::Discipline::kDeadline, seed, 1);
    const std::uint64_t unlimited =
        run_scenario(SupernodeSender::Discipline::kDeadline, seed,
                     std::numeric_limits<std::size_t>::max());
    EXPECT_EQ(unlimited, per_packet) << "seed " << seed;
  }
}

TEST(SenderBurstOracle, FifoDisciplineMatchesPerPacketTimeline) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const std::uint64_t per_packet =
        run_scenario(SupernodeSender::Discipline::kFifo, seed, 1);
    const std::uint64_t unlimited =
        run_scenario(SupernodeSender::Discipline::kFifo, seed,
                     std::numeric_limits<std::size_t>::max());
    EXPECT_EQ(unlimited, per_packet) << "seed " << seed;
  }
}

TEST(SenderBurstOracle, IntermediateBurstLimitsMatchToo) {
  // The train-break rule is limit-agnostic: any cap yields the same
  // timeline, it only changes how many completions ride one event.
  const std::uint64_t oracle =
      run_scenario(SupernodeSender::Discipline::kDeadline, 3, 1);
  for (std::size_t limit : {2u, 7u, 64u}) {
    EXPECT_EQ(run_scenario(SupernodeSender::Discipline::kDeadline, 3, limit),
              oracle)
        << "burst_limit " << limit;
  }
}

TEST(SenderBurstOracle, DirectSubmitsOutsideTheRunLoopStaySerialised) {
  // Between run_*() calls the run horizon is -infinity, so submits from
  // driver code always arm one event per packet — a second direct submit
  // at the same sim time must queue behind the first, never double-book
  // the uplink (the regression the run-horizon gate exists to prevent).
  sim::Simulator sim;
  std::vector<PacketDelivery> deliveries;
  SupernodeSender sender(
      sim, 1'200.0, SupernodeSender::Discipline::kFifo,
      DeadlineSchedulerConfig{}, [](NodeId, util::Rng&) { return 5.0; },
      [&deliveries](const PacketDelivery& d) { deliveries.push_back(d); },
      util::Rng(3));
  stream::VideoSegment seg;
  seg.id = 1;
  seg.player = 7;
  seg.game = 4;
  seg.quality_level = 3;
  seg.duration_ms = 33.3;
  seg.size_kbit = 12.0;  // 10 ms on the wire
  seg.action_time_ms = 0.0;
  seg.deadline_ms = 1'000.0;
  seg.loss_tolerance = game::game_by_id(4).loss_tolerance;
  sender.submit(seg);
  seg.id = 2;
  sender.submit(seg);
  sim.run_all();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_DOUBLE_EQ(deliveries[0].sent_ms, 10.0);
  EXPECT_DOUBLE_EQ(deliveries[1].sent_ms, 20.0);
}

}  // namespace
}  // namespace cloudfog::core
