#include "core/session_manager.h"

#include <gtest/gtest.h>

namespace cloudfog::core {
namespace {

/// A player with three supernode hosts at increasing distance, as in the
/// SupernodeManager tests, plus a second player for contention cases.
struct World {
  // Zero route bias: distances alone decide who is "nearest", so the
  // expectations below are exact rather than a per-pair route lottery.
  static net::LatencyParams flat_params() {
    net::LatencyParams p = net::LatencyParams::simulation_profile(1);
    p.pair_bias_sigma = 0.0;
    return p;
  }

  World() : topo(net::LatencyModel(flat_params())) {
    player = topo.add_host(net::HostRole::kPlayer, {39.95, -75.16}, 8.0);
    player2 = topo.add_host(net::HostRole::kPlayer, {39.94, -75.15}, 9.0);
    sn_close = topo.add_host(net::HostRole::kPlayer, {39.96, -75.17}, 10.0,
                             "close", 3.0);
    sn_mid = topo.add_host(net::HostRole::kPlayer, {40.71, -74.00}, 10.0,
                           "mid", 3.0);
    sn_far = topo.add_host(net::HostRole::kPlayer, {34.05, -118.24}, 10.0,
                           "far", 3.0);
  }

  SessionManager make(SessionManagerConfig config = {}) {
    SupernodeManagerConfig mc;
    mc.probe_jitter_sigma = 0.0;
    return SessionManager(topo, mc, config, util::Rng(5));
  }

  net::Topology topo;
  NodeId player = 0, player2 = 0, sn_close = 0, sn_mid = 0, sn_far = 0;
};

constexpr game::GameId kLooseGame = 4;  // 110 ms requirement

TEST(SessionManager, JoinAssignsNearestAndRecordsBackups) {
  World w;
  auto mgr = w.make();
  mgr.supernode_join(w.sn_close, 5, 10'000.0);
  mgr.supernode_join(w.sn_mid, 5, 10'000.0);
  const Session& s = mgr.player_join(w.player, kLooseGame);
  EXPECT_EQ(s.supernode, w.sn_close);
  ASSERT_EQ(s.backups.size(), 1u);
  EXPECT_EQ(s.backups[0], w.sn_mid);
  EXPECT_EQ(mgr.session_count(), 1u);
  EXPECT_EQ(mgr.supernode_sessions(), 1u);
}

TEST(SessionManager, JoinWithoutSupernodesGoesToCloud) {
  World w;
  auto mgr = w.make();
  const Session& s = mgr.player_join(w.player, kLooseGame);
  EXPECT_TRUE(s.on_cloud());
  EXPECT_EQ(mgr.cloud_sessions(), 1u);
}

TEST(SessionManager, LeaveReleasesCapacity) {
  World w;
  auto mgr = w.make();
  mgr.supernode_join(w.sn_close, 1, 10'000.0);
  mgr.player_join(w.player, kLooseGame);
  EXPECT_EQ(mgr.manager().record(w.sn_close).assigned, 1);
  mgr.player_leave(w.player);
  EXPECT_EQ(mgr.manager().record(w.sn_close).assigned, 0);
  EXPECT_EQ(mgr.session_count(), 0u);
  // The freed slot is reusable.
  EXPECT_EQ(mgr.player_join(w.player2, kLooseGame).supernode, w.sn_close);
}

TEST(SessionManager, DoubleJoinRejected) {
  World w;
  auto mgr = w.make();
  mgr.player_join(w.player, kLooseGame);
  EXPECT_THROW(mgr.player_join(w.player, kLooseGame), std::logic_error);
}

TEST(SessionManager, LeaveWithoutSessionRejected) {
  World w;
  auto mgr = w.make();
  EXPECT_THROW(mgr.player_leave(w.player), std::logic_error);
}

TEST(SessionManager, DemandTracksSessions) {
  World w;
  auto mgr = w.make();
  mgr.supernode_join(w.sn_close, 5, 10'000.0);
  mgr.player_join(w.player, kLooseGame);   // 1800 kbps target
  mgr.player_join(w.player2, kLooseGame);  // 1800 kbps target
  EXPECT_DOUBLE_EQ(mgr.demand_kbps(w.sn_close), 3'600.0);
  EXPECT_DOUBLE_EQ(mgr.utilization(w.sn_close), 0.36);
  mgr.player_leave(w.player);
  EXPECT_DOUBLE_EQ(mgr.demand_kbps(w.sn_close), 1'800.0);
}

TEST(SessionManager, FailoverToBackup) {
  World w;
  auto mgr = w.make();
  mgr.supernode_join(w.sn_close, 5, 10'000.0);
  mgr.supernode_join(w.sn_mid, 5, 10'000.0);
  mgr.player_join(w.player, kLooseGame);
  const FailoverReport report = mgr.supernode_leave(w.sn_close);
  EXPECT_EQ(report.players_affected, 1u);
  EXPECT_EQ(report.recovered_to_backup, 1u);
  EXPECT_EQ(report.fell_to_cloud, 0u);
  EXPECT_EQ(mgr.session(w.player).supernode, w.sn_mid);
  EXPECT_EQ(mgr.manager().record(w.sn_mid).assigned, 1);
}

TEST(SessionManager, FailoverSkipsFullBackups) {
  World w;
  auto mgr = w.make();
  mgr.supernode_join(w.sn_close, 5, 10'000.0);
  mgr.supernode_join(w.sn_mid, 1, 10'000.0);
  // player2 fills the mid supernode... by joining when close is full.
  mgr.supernode_join(w.sn_far, 5, 10'000.0);
  mgr.player_join(w.player, kLooseGame);    // -> close
  // Make the only backup (mid) full via a direct claim path:
  mgr.player_join(w.player2, kLooseGame);   // -> close (capacity 5)
  // Remove close. player and player2 both look at mid (cap 1): one gets
  // it, the other must reassign or fall to cloud.
  const FailoverReport report = mgr.supernode_leave(w.sn_close);
  EXPECT_EQ(report.players_affected, 2u);
  EXPECT_EQ(report.recovered_to_backup + report.reassigned +
                report.fell_to_cloud,
            2u);
  EXPECT_LE(mgr.manager().record(w.sn_mid).assigned, 1);
}

TEST(SessionManager, FailoverDisabledReassignsFresh) {
  World w;
  SessionManagerConfig config;
  config.enable_failover = false;
  auto mgr = w.make(config);
  mgr.supernode_join(w.sn_close, 5, 10'000.0);
  mgr.supernode_join(w.sn_mid, 5, 10'000.0);
  mgr.player_join(w.player, kLooseGame);
  const FailoverReport report = mgr.supernode_leave(w.sn_close);
  EXPECT_EQ(report.recovered_to_backup, 0u);
  EXPECT_EQ(report.reassigned, 1u);
  EXPECT_EQ(mgr.session(w.player).supernode, w.sn_mid);
}

TEST(SessionManager, FailoverToCloudWhenNothingLeft) {
  World w;
  auto mgr = w.make();
  mgr.supernode_join(w.sn_close, 5, 10'000.0);
  mgr.player_join(w.player, kLooseGame);
  const FailoverReport report = mgr.supernode_leave(w.sn_close);
  EXPECT_EQ(report.fell_to_cloud, 1u);
  EXPECT_TRUE(mgr.session(w.player).on_cloud());
  EXPECT_EQ(mgr.supernode_count(), 0u);
}

TEST(SessionManager, FailoverRespectsLatencyRequirement) {
  // The only backup is cross-country: a strict game cannot fail over to it.
  World w;
  auto mgr = w.make();
  mgr.supernode_join(w.sn_close, 5, 10'000.0);
  mgr.supernode_join(w.sn_far, 5, 10'000.0);
  constexpr game::GameId kStrictGame = 0;  // 30 ms
  const Session& s = mgr.player_join(w.player, kStrictGame);
  ASSERT_EQ(s.supernode, w.sn_close);
  const FailoverReport report = mgr.supernode_leave(w.sn_close);
  EXPECT_EQ(report.recovered_to_backup, 0u);
  EXPECT_EQ(report.fell_to_cloud, 1u);
}

TEST(SessionManager, DepartureOfIdleSupernodeAffectsNobody) {
  World w;
  auto mgr = w.make();
  mgr.supernode_join(w.sn_close, 5, 10'000.0);
  mgr.supernode_join(w.sn_mid, 5, 10'000.0);
  mgr.player_join(w.player, kLooseGame);  // -> close
  const FailoverReport report = mgr.supernode_leave(w.sn_mid);
  EXPECT_EQ(report.players_affected, 0u);
  EXPECT_EQ(mgr.session(w.player).supernode, w.sn_close);
}

TEST(SessionManager, RebalanceNoopWhenDisabled) {
  World w;
  auto mgr = w.make();  // cooperation off by default
  mgr.supernode_join(w.sn_close, 8, 4'000.0);  // small uplink: overloads fast
  mgr.player_join(w.player, kLooseGame);
  mgr.player_join(w.player2, kLooseGame);
  EXPECT_GE(mgr.utilization(w.sn_close), 0.9);
  const RebalanceReport report = mgr.rebalance();
  EXPECT_EQ(report.players_moved, 0u);
}

TEST(SessionManager, RebalanceShedsToBackupWithHeadroom) {
  World w;
  SessionManagerConfig config;
  config.enable_cooperation = true;
  config.shed_utilization = 0.8;
  auto mgr = w.make(config);
  mgr.supernode_join(w.sn_close, 8, 4'000.0);   // will overload
  mgr.supernode_join(w.sn_mid, 8, 20'000.0);    // plenty of headroom
  mgr.player_join(w.player, kLooseGame);   // 1800 kbps -> close (0.45)
  mgr.player_join(w.player2, kLooseGame);  // 3600 kbps -> close (0.90)
  ASSERT_GT(mgr.utilization(w.sn_close), 0.8);
  const RebalanceReport report = mgr.rebalance();
  EXPECT_EQ(report.overloaded_supernodes, 1u);
  EXPECT_EQ(report.players_moved, 1u);
  EXPECT_LE(mgr.utilization(w.sn_close), 0.8);
  EXPECT_EQ(mgr.manager().record(w.sn_mid).assigned, 1);
}

TEST(SessionManager, RebalanceKeepsPlayerWhenNoHeadroomAnywhere) {
  World w;
  SessionManagerConfig config;
  config.enable_cooperation = true;
  config.shed_utilization = 0.5;
  auto mgr = w.make(config);
  mgr.supernode_join(w.sn_close, 8, 4'000.0);
  mgr.player_join(w.player, kLooseGame);  // 0.45
  mgr.player_join(w.player2, kLooseGame); // 0.90 > threshold, no backups
  const RebalanceReport report = mgr.rebalance();
  EXPECT_EQ(report.players_moved, 0u);
  // Both sessions must still be attached.
  EXPECT_EQ(mgr.supernode_sessions(), 2u);
  EXPECT_DOUBLE_EQ(mgr.demand_kbps(w.sn_close), 3'600.0);
}

TEST(SessionManager, SupernodeRejoinIsServableAgain) {
  World w;
  auto mgr = w.make();
  mgr.supernode_join(w.sn_close, 5, 10'000.0);
  mgr.player_join(w.player, kLooseGame);
  mgr.supernode_leave(w.sn_close);
  EXPECT_TRUE(mgr.session(w.player).on_cloud());
  mgr.supernode_join(w.sn_close, 5, 10'000.0);
  // A new player can land on the rejoined node.
  EXPECT_EQ(mgr.player_join(w.player2, kLooseGame).supernode, w.sn_close);
}

}  // namespace
}  // namespace cloudfog::core
