#include "core/supernode_sender.h"

#include <gtest/gtest.h>

#include <vector>

namespace cloudfog::core {
namespace {

stream::VideoSegment make_segment(std::uint64_t id, NodeId player,
                                  game::GameId game, Kbit size,
                                  TimeMs action_ms, TimeMs deadline_ms) {
  stream::VideoSegment seg;
  seg.id = id;
  seg.player = player;
  seg.game = game;
  seg.quality_level = 3;
  seg.duration_ms = 33.3;
  seg.size_kbit = size;
  seg.action_time_ms = action_ms;
  seg.deadline_ms = deadline_ms;
  seg.loss_tolerance = game::game_by_id(game).loss_tolerance;
  return seg;
}

struct Harness {
  explicit Harness(SupernodeSender::Discipline discipline,
                   Kbps uplink = 1'200.0, TimeMs prop = 5.0) {
    sender = std::make_unique<SupernodeSender>(
        sim, uplink, discipline, DeadlineSchedulerConfig{},
        [prop](NodeId, util::Rng&) { return prop; },
        [this](const PacketDelivery& d) { deliveries.push_back(d); },
        util::Rng(3));
  }

  sim::Simulator sim;
  std::unique_ptr<SupernodeSender> sender;
  std::vector<PacketDelivery> deliveries;
};

TEST(SupernodeSenderFifo, SinglePacketTiming) {
  Harness h(SupernodeSender::Discipline::kFifo);
  // 12 kbit at 1200 kbps = 10 ms transmission + 5 ms propagation.
  h.sender->submit(make_segment(1, 7, 4, 12.0, 0.0, 110.0));
  h.sim.run_all();
  ASSERT_EQ(h.deliveries.size(), 1u);
  EXPECT_DOUBLE_EQ(h.deliveries[0].sent_ms, 10.0);
  EXPECT_DOUBLE_EQ(h.deliveries[0].arrival_ms, 15.0);
  EXPECT_TRUE(h.deliveries[0].on_time());
  EXPECT_EQ(h.deliveries[0].player, 7u);
}

TEST(SupernodeSenderFifo, ServesInArrivalOrderIgnoringDeadlines) {
  Harness h(SupernodeSender::Discipline::kFifo);
  h.sender->submit(make_segment(1, 7, 4, 12.0, 0.0, 1'000.0));  // loose
  h.sender->submit(make_segment(2, 8, 0, 12.0, 0.0, 15.0));     // tight
  h.sim.run_all();
  ASSERT_EQ(h.deliveries.size(), 2u);
  EXPECT_EQ(h.deliveries[0].segment_id, 1u);  // FIFO: first-come first-served
  EXPECT_EQ(h.deliveries[1].segment_id, 2u);
  EXPECT_FALSE(h.deliveries[1].on_time());  // the tight one missed
}

TEST(SupernodeSenderDeadline, ReordersByExpectedArrival) {
  Harness h(SupernodeSender::Discipline::kDeadline);
  h.sender->submit(make_segment(1, 7, 4, 12.0, 0.0, 1'000.0));
  h.sender->submit(make_segment(2, 8, 0, 12.0, 0.0, 30.0));
  h.sim.run_all();
  ASSERT_EQ(h.deliveries.size(), 2u);
  // The first packet of segment 1 is already transmitting when segment 2
  // arrives; after it, segment 2's tighter deadline wins. With one packet
  // each, segment 1 transmits first only because it started first.
  EXPECT_EQ(h.deliveries[0].segment_id, 1u);
  EXPECT_EQ(h.deliveries[1].segment_id, 2u);
}

TEST(SupernodeSenderDeadline, TightDeadlineOvertakesQueuedPackets) {
  Harness h(SupernodeSender::Discipline::kDeadline);
  // A 5-packet loose segment, then a 1-packet tight one. The tight packet
  // must transmit right after the in-flight packet, not after all 5.
  h.sender->submit(make_segment(1, 7, 4, 60.0, 0.0, 10'000.0));
  h.sender->submit(make_segment(2, 8, 0, 12.0, 0.0, 50.0));
  h.sim.run_all();
  ASSERT_EQ(h.deliveries.size(), 6u);
  EXPECT_EQ(h.deliveries[0].segment_id, 1u);  // was already on the wire
  EXPECT_EQ(h.deliveries[1].segment_id, 2u);  // overtook
  EXPECT_TRUE(h.deliveries[1].on_time());
}

TEST(SupernodeSenderDeadline, PropagationHistoryFeedsScheduler) {
  Harness h(SupernodeSender::Discipline::kDeadline, 1'200.0, 42.0);
  h.sender->submit(make_segment(1, 7, 4, 12.0, 0.0, 10'000.0));
  h.sim.run_all();
  EXPECT_DOUBLE_EQ(h.sender->scheduler().estimated_propagation_ms(7), 42.0);
}

TEST(SupernodeSenderDeadline, DropsWhenOverloaded) {
  Harness h(SupernodeSender::Discipline::kDeadline, 120.0);  // 100 ms/packet
  int drops = 0;
  h.sender->set_drop_observer(
      [&](const stream::VideoSegment&, int) { ++drops; });
  h.sender->submit(make_segment(1, 7, 4, 36.0, 0.0, 110.0));  // infeasible
  h.sim.run_all();
  EXPECT_GT(drops, 0);
  EXPECT_EQ(h.sender->packets_dropped(), static_cast<std::uint64_t>(drops));
  // Delivered + dropped = submitted.
  EXPECT_EQ(h.deliveries.size() + static_cast<std::size_t>(drops), 3u);
}

TEST(SupernodeSenderFifo, NeverDrops) {
  Harness h(SupernodeSender::Discipline::kFifo, 120.0);
  h.sender->submit(make_segment(1, 7, 4, 36.0, 0.0, 110.0));
  h.sim.run_all();
  EXPECT_EQ(h.sender->packets_dropped(), 0u);
  EXPECT_EQ(h.deliveries.size(), 3u);
}

TEST(SupernodeSender, CountersTrackSubmissions) {
  Harness h(SupernodeSender::Discipline::kFifo);
  h.sender->submit(make_segment(1, 7, 4, 36.0, 0.0, 1'000.0));  // 3 packets
  h.sender->submit(make_segment(2, 8, 4, 12.0, 0.0, 1'000.0));  // 1 packet
  h.sim.run_all();
  EXPECT_EQ(h.sender->packets_submitted(), 4u);
  EXPECT_EQ(h.sender->packets_sent(), 4u);
}

TEST(SupernodeSender, BackToBackTransmissionsSerialise) {
  Harness h(SupernodeSender::Discipline::kFifo);
  h.sender->submit(make_segment(1, 7, 4, 24.0, 0.0, 1'000.0));  // 2 packets
  h.sim.run_all();
  ASSERT_EQ(h.deliveries.size(), 2u);
  EXPECT_DOUBLE_EQ(h.deliveries[0].sent_ms, 10.0);
  EXPECT_DOUBLE_EQ(h.deliveries[1].sent_ms, 20.0);
}

TEST(SupernodeSender, RateCapStretchesDeliveryNotQueue) {
  Harness h(SupernodeSender::Discipline::kFifo);
  // WAN bottleneck at 600 kbps: each 12-kbit packet gains 20 - 10 = 10 ms
  // of transit, but the uplink still frees every 10 ms.
  h.sender->set_rate_cap([](NodeId, std::uint64_t) { return 600.0; });
  h.sender->submit(make_segment(1, 7, 4, 24.0, 0.0, 1'000.0));
  h.sim.run_all();
  ASSERT_EQ(h.deliveries.size(), 2u);
  EXPECT_DOUBLE_EQ(h.deliveries[0].sent_ms, 10.0);
  EXPECT_DOUBLE_EQ(h.deliveries[0].arrival_ms, 25.0);  // 10 + 5 + 10 transit
  EXPECT_DOUBLE_EQ(h.deliveries[1].sent_ms, 20.0);     // queue not stretched
}

TEST(SupernodeSender, IdleThenBusyAgain) {
  Harness h(SupernodeSender::Discipline::kFifo);
  h.sender->submit(make_segment(1, 7, 4, 12.0, 0.0, 1'000.0));
  h.sim.run_all();
  EXPECT_EQ(h.deliveries.size(), 1u);
  h.sim.schedule_at(100.0, [&] {
    h.sender->submit(make_segment(2, 7, 4, 12.0, 100.0, 1'000.0));
  });
  h.sim.run_all();
  ASSERT_EQ(h.deliveries.size(), 2u);
  EXPECT_DOUBLE_EQ(h.deliveries[1].sent_ms, 110.0);
}

TEST(SupernodeSender, ConstructorValidation) {
  sim::Simulator sim;
  EXPECT_THROW(SupernodeSender(sim, 0.0, SupernodeSender::Discipline::kFifo,
                               DeadlineSchedulerConfig{},
                               [](NodeId, util::Rng&) { return 1.0; },
                               [](const PacketDelivery&) {}, util::Rng(1)),
               std::logic_error);
  EXPECT_THROW(SupernodeSender(sim, 100.0, SupernodeSender::Discipline::kFifo,
                               DeadlineSchedulerConfig{}, nullptr,
                               [](const PacketDelivery&) {}, util::Rng(1)),
               std::logic_error);
}

}  // namespace
}  // namespace cloudfog::core
