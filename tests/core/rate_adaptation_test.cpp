#include "core/rate_adaptation.h"

#include <gtest/gtest.h>

namespace cloudfog::core {
namespace {

using Decision = RateAdaptationController::Decision;

RateAdaptationConfig quick_config(int consecutive = 3) {
  RateAdaptationConfig config;
  config.theta = 0.5;
  config.consecutive_estimates = consecutive;
  return config;
}

TEST(RateAdaptation, StartsAtGameTargetLevel) {
  for (const auto& g : game::game_catalog()) {
    RateAdaptationController c(g, quick_config());
    EXPECT_EQ(c.level(), g.target_quality_level);
    EXPECT_EQ(c.max_level(), g.target_quality_level);
  }
}

TEST(RateAdaptation, ThresholdsScaledByRho) {
  // Paper: up threshold (1+beta)/rho, down threshold theta/rho.
  const auto& g = game::game_by_id(2);  // rho = 0.8
  RateAdaptationController c(g, quick_config());
  EXPECT_NEAR(c.up_threshold(), (1.0 + game::adjust_up_beta()) / 0.8, 1e-12);
  EXPECT_NEAR(c.down_threshold(), 0.5 / 0.8, 1e-12);
}

TEST(RateAdaptation, SensitiveGamesHaveStricterThresholds) {
  // Lower rho (latency-sensitive) -> higher thresholds on r.
  RateAdaptationController sensitive(game::game_by_id(0), quick_config());
  RateAdaptationController tolerant(game::game_by_id(4), quick_config());
  EXPECT_GT(sensitive.up_threshold(), tolerant.up_threshold());
  EXPECT_GT(sensitive.down_threshold(), tolerant.down_threshold());
}

TEST(RateAdaptation, DownAfterConsecutiveLowEstimates) {
  RateAdaptationController c(game::game_by_id(4), quick_config(3));
  EXPECT_EQ(c.observe(0.1), Decision::kHold);
  EXPECT_EQ(c.observe(0.1), Decision::kHold);
  EXPECT_EQ(c.observe(0.1), Decision::kDown);
  EXPECT_EQ(c.level(), 4);
}

TEST(RateAdaptation, UpAfterConsecutiveHighEstimates) {
  RateAdaptationController c(game::game_by_id(4), quick_config(3), 3);
  EXPECT_EQ(c.level(), 3);
  c.observe(5.0);
  c.observe(5.0);
  EXPECT_EQ(c.observe(5.0), Decision::kUp);
  EXPECT_EQ(c.level(), 4);
}

TEST(RateAdaptation, NeutralEstimateResetsCounters) {
  // The paper's anti-fluctuation rule: all consecutive estimates must
  // satisfy the condition.
  RateAdaptationController c(game::game_by_id(4), quick_config(3));
  c.observe(0.1);
  c.observe(0.1);
  c.observe(1.0);  // within band: reset
  c.observe(0.1);
  EXPECT_EQ(c.observe(0.1), Decision::kHold);
  EXPECT_EQ(c.observe(0.1), Decision::kDown);
}

TEST(RateAdaptation, OppositeEstimateResetsCounters) {
  RateAdaptationController c(game::game_by_id(4), quick_config(3), 3);
  c.observe(5.0);
  c.observe(5.0);
  c.observe(0.1);  // flips to down counting
  EXPECT_EQ(c.consecutive_up(), 0);
  EXPECT_EQ(c.consecutive_down(), 1);
}

TEST(RateAdaptation, NeverBelowLevelOne) {
  RateAdaptationController c(game::game_by_id(0), quick_config(1));
  EXPECT_EQ(c.level(), 1);
  EXPECT_EQ(c.observe(0.0), Decision::kHold);
  EXPECT_EQ(c.level(), 1);
}

TEST(RateAdaptation, NeverAboveGameTarget) {
  // Paper: encoding never exceeds the level matching the game's latency
  // requirement.
  RateAdaptationController c(game::game_by_id(1), quick_config(1));  // target 2
  EXPECT_EQ(c.observe(100.0), Decision::kHold);
  EXPECT_EQ(c.level(), 2);
}

TEST(RateAdaptation, FullDownUpCycle) {
  RateAdaptationController c(game::game_by_id(4), quick_config(1));
  for (int expected = 4; expected >= 1; --expected) {
    EXPECT_EQ(c.observe(0.0), Decision::kDown);
    EXPECT_EQ(c.level(), expected);
  }
  EXPECT_EQ(c.observe(0.0), Decision::kHold);  // floor
  for (int expected = 2; expected <= 5; ++expected) {
    EXPECT_EQ(c.observe(100.0), Decision::kUp);
    EXPECT_EQ(c.level(), expected);
  }
  EXPECT_EQ(c.observe(100.0), Decision::kHold);  // ceiling
}

TEST(RateAdaptation, BitrateMatchesLevel) {
  RateAdaptationController c(game::game_by_id(4), quick_config(1));
  EXPECT_DOUBLE_EQ(c.bitrate_kbps(), 1'800.0);
  c.observe(0.0);
  EXPECT_DOUBLE_EQ(c.bitrate_kbps(), 1'200.0);
}

TEST(RateAdaptation, PaperFigure3Example) {
  // Figure 3: r > 1+beta consecutively -> 800 -> 1200 kbps;
  // r < theta -> 800 -> 500 kbps. Use the 110 ms game (rho = 1) so the
  // thresholds match the unscaled formulas, starting at level 3 (800 kbps).
  RateAdaptationController c(game::game_by_id(4), quick_config(2), 3);
  const double r_high = 1.0 + game::adjust_up_beta() + 0.01;
  c.observe(r_high);
  EXPECT_EQ(c.observe(r_high), Decision::kUp);
  EXPECT_DOUBLE_EQ(c.bitrate_kbps(), 1'200.0);
  // Back down to 800, then a congested buffer drops it to 500.
  c.observe(0.4);
  EXPECT_EQ(c.observe(0.4), Decision::kDown);
  EXPECT_DOUBLE_EQ(c.bitrate_kbps(), 800.0);
  c.observe(0.4);
  EXPECT_EQ(c.observe(0.4), Decision::kDown);
  EXPECT_DOUBLE_EQ(c.bitrate_kbps(), 500.0);
}

TEST(RateAdaptation, BoundaryEstimatesAreHold) {
  RateAdaptationController c(game::game_by_id(4), quick_config(1));
  // Exactly at the thresholds: neither condition is strict-inequality true.
  EXPECT_EQ(c.observe(c.up_threshold()), Decision::kHold);
  EXPECT_EQ(c.observe(c.down_threshold()), Decision::kHold);
}

TEST(RateAdaptation, RejectsBadConfig) {
  RateAdaptationConfig bad;
  bad.theta = 0.0;
  EXPECT_THROW(RateAdaptationController(game::game_by_id(0), bad),
               std::logic_error);
  RateAdaptationConfig bad2;
  bad2.consecutive_estimates = 0;
  EXPECT_THROW(RateAdaptationController(game::game_by_id(0), bad2),
               std::logic_error);
}

TEST(RateAdaptation, RejectsBadInitialLevel) {
  EXPECT_THROW(
      RateAdaptationController(game::game_by_id(1), quick_config(), 5),
      std::logic_error);  // above the game's target
  EXPECT_THROW(RateAdaptationController(game::game_by_id(1), quick_config(), 0),
               std::logic_error);
}

TEST(RateAdaptation, RejectsNegativeEstimate) {
  RateAdaptationController c(game::game_by_id(0), quick_config());
  EXPECT_THROW(c.observe(-0.5), std::logic_error);
}

}  // namespace
}  // namespace cloudfog::core
