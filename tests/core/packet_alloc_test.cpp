// Zero-allocation proof for the packet hot loop (DESIGN.md §14): a global
// operator-new interposer counts every heap allocation in the process, and
// the steady-state window of a sustained deadline-discipline run — sim
// events through the slab, scheduler enqueue/pop through its pools, burst
// trains, small_function hooks, FIFO-ring reuse — must perform none.
//
// This file replaces ::operator new/delete for its whole binary, so it gets
// a test binary of its own (alloc_tests); mixing it into core_tests would
// make every other core test run under the interposer too.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "core/supernode_sender.h"
#include "game/game.h"
#include "sim/simulator.h"
#include "stream/video.h"
#include "util/rng.h"

namespace {

// Plain (non-atomic) state: the simulator and this test are single-threaded,
// and the counter must itself stay allocation- and lock-free.
bool g_counting = false;
std::uint64_t g_allocs = 0;

void note_alloc() {
  if (g_counting) ++g_allocs;
}

}  // namespace

void* operator new(std::size_t size) {
  note_alloc();
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  note_alloc();
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  note_alloc();
  return std::malloc(size == 0 ? 1 : size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  note_alloc();
  return std::malloc(size == 0 ? 1 : size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace cloudfog::core {
namespace {

TEST(PacketAllocInterposer, SteadyStateRunsAllocationFree) {
  const std::size_t players = 16;
  const double interval_ms = 33.3;
  const double warmup_ms = 2'000.0;
  const double measure_ms = 2'000.0;
  const Kbps uplink_kbps = 190'000.0;

  sim::Simulator sim;
  util::Rng load_rng(99);
  std::uint64_t digest = 14695981039346656037ull;

  SupernodeSender sender(
      sim, uplink_kbps, SupernodeSender::Discipline::kDeadline,
      DeadlineSchedulerConfig{},
      [](NodeId player, util::Rng& rng) {
        return 4.0 + rng.uniform(0.0, 4.0) +
               0.1 * static_cast<double>(player % 7);
      },
      [&digest](const PacketDelivery& d) {
        digest ^= d.segment_id + static_cast<std::uint64_t>(d.packet_index);
        digest *= 1099511628211ull;
      },
      util::Rng(5).fork("alloc_probe"));
  sender.set_rate_cap([uplink_kbps](NodeId player, std::uint64_t) {
    return player % 4 == 0 ? uplink_kbps / 2.0 : 0.0;
  });
  sender.set_loss_model(
      [](NodeId player, std::uint64_t) { return player % 5 == 0 ? 0.01 : 0.0; });
  sender.set_drop_observer([&digest](const stream::VideoSegment& seg, int) {
    digest ^= seg.id;
    digest *= 1099511628211ull;
  });

  // The same sustained load in warmup and measurement — every eighth round
  // is an overload spike, so the queue/pool/slab high-water marks (and the
  // scheduler's drop path) are all reached before counting starts.
  std::uint64_t round = 0;
  sim.schedule_every(interval_ms, interval_ms, [&] {
    ++round;
    const TimeMs now = sim.now();
    const double burst = round % 8 == 0 ? 2.0 : 1.0;
    for (std::size_t p = 0; p < players; ++p) {
      const game::GameProfile& game =
          game::game_by_id(static_cast<game::GameId>(p % 5));
      stream::VideoSegment seg;
      seg.id = round * 1000 + p;
      seg.player = static_cast<NodeId>(p + 1);
      seg.game = static_cast<game::GameId>(p % 5);
      seg.quality_level = 3;
      seg.duration_ms = interval_ms;
      seg.size_kbit = load_rng.uniform(240.0, 400.0) * burst;
      seg.action_time_ms = now;
      seg.deadline_ms = now + game.latency_requirement_ms;
      seg.loss_tolerance = game.loss_tolerance;
      sender.submit(seg);
    }
  });

  sim.run_until(warmup_ms);
  const std::uint64_t sent_at_warmup = sender.packets_sent();

  g_allocs = 0;
  g_counting = true;
  sim.run_until(warmup_ms + measure_ms);
  g_counting = false;

  // The window did real work...
  EXPECT_GT(sender.packets_sent(), sent_at_warmup + 10'000u);
  EXPECT_NE(digest, 14695981039346656037ull);
  // ...and none of it touched the heap.
  EXPECT_EQ(g_allocs, 0u);
}

}  // namespace
}  // namespace cloudfog::core
