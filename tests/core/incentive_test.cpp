#include "core/incentive.h"

#include <gtest/gtest.h>

namespace cloudfog::core {
namespace {

IncentiveParams params() {
  IncentiveParams p;
  p.reward_per_kbps = 0.5;    // c_s
  p.value_per_kbps = 1.0;     // c_c
  p.update_stream_kbps = 100; // Lambda
  p.stream_rate_kbps = 800;   // R
  return p;
}

TEST(Equation1, SupernodeProfit) {
  // P_s = c_s * c_j * u_j - cost_j = 0.5 * 10000 * 0.8 - 1000 = 3000.
  EXPECT_DOUBLE_EQ(supernode_profit(params(), 10'000.0, 0.8, 1'000.0), 3'000.0);
}

TEST(Equation1, ProfitCanBeNegative) {
  EXPECT_LT(supernode_profit(params(), 1'000.0, 0.5, 10'000.0), 0.0);
}

TEST(Equation1, RejectsUtilizationOutsideEq5Bounds) {
  EXPECT_THROW(supernode_profit(params(), 1'000.0, 1.2, 0.0), std::logic_error);
  EXPECT_THROW(supernode_profit(params(), 1'000.0, -0.1, 0.0), std::logic_error);
}

TEST(Equation2, BandwidthReduction) {
  // B_r = n*R - Lambda*m = 100*800 - 100*20 = 78000 kbps.
  EXPECT_DOUBLE_EQ(bandwidth_reduction(params(), 100.0, 20.0), 78'000.0);
}

TEST(Equation2, ManySupernodesFewPlayersCanBeNegative) {
  EXPECT_LT(bandwidth_reduction(params(), 1.0, 100.0), 0.0);
}

TEST(Equation3, ProviderSaving) {
  std::vector<SupernodeOffer> deployed(2);
  deployed[0].upload_kbps = 50'000.0;
  deployed[0].utilization = 0.8;  // contributes 40000
  deployed[1].upload_kbps = 50'000.0;
  deployed[1].utilization = 1.0;  // contributes 50000
  // B_r = 100*800 - 100*2 = 79800; B_s = 90000.
  // C_g = 1.0*79800 - 0.5*90000 = 34800.
  EXPECT_DOUBLE_EQ(provider_saving(params(), 100.0, deployed), 34'800.0);
}

TEST(Equation3, FewerSupernodesSaveMoreAtFixedCoverage) {
  // The paper's observation: for a given n, smaller m raises C_g.
  std::vector<SupernodeOffer> few(1), many(4);
  few[0].upload_kbps = 100'000.0;
  few[0].utilization = 0.8;
  for (auto& o : many) {
    o.upload_kbps = 25'000.0;
    o.utilization = 0.8;
  }
  EXPECT_GT(provider_saving(params(), 100.0, few),
            provider_saving(params(), 100.0, many));
}

TEST(Equation4And5, FeasibilityChecks) {
  std::vector<SupernodeOffer> deployed(1);
  deployed[0].upload_kbps = 100'000.0;
  deployed[0].utilization = 1.0;
  // Demand: n * R = 100 * 800 = 80000 <= 100000.
  EXPECT_TRUE(deployment_feasible(params(), 100.0, deployed));
  // 200 players demand 160000 > 100000.
  EXPECT_FALSE(deployment_feasible(params(), 200.0, deployed));
  // Utilization above 1 violates Eq (5).
  deployed[0].utilization = 1.5;
  EXPECT_FALSE(deployment_feasible(params(), 10.0, deployed));
}

TEST(Equation6, MarginalGain) {
  SupernodeOffer offer;
  offer.upload_kbps = 10'000.0;
  offer.utilization = 1.0;
  offer.new_players_covered = 10.0;
  // G_s = c_c*(nu*R - Lambda) - c_s*c_j*u_j
  //     = 1.0*(10*800 - 100) - 0.5*10000 = 2900.
  EXPECT_DOUBLE_EQ(marginal_gain(params(), offer), 2'900.0);
}

TEST(Equation6, UselessSupernodeHasNegativeGain) {
  SupernodeOffer offer;
  offer.upload_kbps = 10'000.0;
  offer.utilization = 1.0;
  offer.new_players_covered = 0.0;  // covers nobody new
  EXPECT_LT(marginal_gain(params(), offer), 0.0);
}

TEST(GreedyDeployment, AcceptsOnlyPositiveGains) {
  std::vector<SupernodeOffer> offers(3);
  offers[0].upload_kbps = 10'000.0;
  offers[0].new_players_covered = 10.0;  // gain 2900
  offers[1].upload_kbps = 10'000.0;
  offers[1].new_players_covered = 0.0;   // gain negative
  offers[2].upload_kbps = 5'000.0;
  offers[2].new_players_covered = 20.0;  // gain 1.0*(16000-100)-2500 = 13400
  for (auto& o : offers) o.utilization = 1.0;
  const auto accepted = greedy_deployment(params(), offers);
  ASSERT_EQ(accepted.size(), 2u);
  EXPECT_EQ(accepted[0], 2u);  // highest gain first
  EXPECT_EQ(accepted[1], 0u);
}

TEST(GreedyDeployment, EmptyOffers) {
  EXPECT_TRUE(greedy_deployment(params(), {}).empty());
}

TEST(GreedyDeployment, AllNegativeRejected) {
  std::vector<SupernodeOffer> offers(2);
  for (auto& o : offers) {
    o.upload_kbps = 100'000.0;
    o.utilization = 1.0;
    o.new_players_covered = 1.0;
  }
  EXPECT_TRUE(greedy_deployment(params(), offers).empty());
}

TEST(IncentiveConsistency, ProfitableForBothSidesExists) {
  // A healthy market point: contributor profits and provider gains.
  const auto p = params();
  SupernodeOffer offer;
  offer.upload_kbps = 8'000.0;  // capacity-4 machine
  offer.utilization = 0.9;
  offer.new_players_covered = 8.0;
  offer.contributor_cost = 1'000.0;
  EXPECT_GT(supernode_profit(p, offer.upload_kbps, offer.utilization,
                             offer.contributor_cost),
            0.0);
  EXPECT_GT(marginal_gain(p, offer), 0.0);
}

}  // namespace
}  // namespace cloudfog::core
