// SessionStore unit tests: the SoA slab behind SessionManager (DESIGN.md
// §12). Covers the exact integer demand ledger (a drift regression the old
// double-accumulator book fails), the intrusive attach-order member list,
// and generation-tagged handle invalidation.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/session_store.h"

namespace cloudfog::core {
namespace {

constexpr game::GameId kGame = 0;

TEST(SessionStoreLedger, MillikbpsRoundTripContract) {
  // Catalog-style integral bitrates and binary-exact fractions round-trip.
  EXPECT_EQ(SessionStore::to_millikbps(0.0), 0);
  EXPECT_EQ(SessionStore::to_millikbps(8000.0), 8'000'000);
  EXPECT_EQ(SessionStore::to_millikbps(1536.125), 1'536'125);
  EXPECT_EQ(SessionStore::from_millikbps(1'536'125), 1536.125);
}

TEST(SessionStoreLedger, DemandIsExactlyZeroAfterFullChurn) {
  // Drift regression. The pre-slab book accumulated demand as
  // `demand[sn] += bitrate` / `-= bitrate` in doubles; interleaving a large
  // resident demand with many small attach/detach cycles leaves a nonzero
  // residue there ((big + small) - small != big once the small value's low
  // bits fall off the mantissa). The integer millikbps ledger must return
  // to the exact resident sum, and to exact zero once everything detaches.
  SessionStore store;
  store.register_server(1000);

  // Resident load: 100 sessions at 4500.1 kbps (not a binary fraction, but
  // exactly representable in millikbps — the ledger contract).
  std::vector<SessionIdx> residents;
  for (NodeId p = 0; p < 100; ++p) {
    const SessionIdx idx = store.open(p, kGame, 4500.1);
    store.attach(idx, 1000, 5.0);
    residents.push_back(idx);
  }
  const std::int64_t resident_mkbps = store.demand_millikbps(1000);
  EXPECT_EQ(resident_mkbps, 100 * 4'500'100);

  // Churn a small fractional-bitrate session against the large resident
  // demand. 0.3 kbps = 300 millikbps exactly; in doubles, 450010.0 + 0.3
  // already rounds.
  for (int cycle = 0; cycle < 10'000; ++cycle) {
    const SessionIdx idx = store.open(500, kGame, 0.3);
    store.attach(idx, 1000, 5.0);
    store.detach(idx);
    store.close(idx);
    ASSERT_EQ(store.demand_millikbps(1000), resident_mkbps)
        << "ledger drifted after " << cycle + 1 << " churn cycles";
  }
  // Bit-exact equality, not EXPECT_NEAR: demand_kbps must be the exact
  // double 450010.0, not something within an epsilon of it.
  EXPECT_EQ(store.demand_kbps(1000), 450010.0);

  for (const SessionIdx idx : residents) {
    store.detach(idx);
    store.close(idx);
  }
  EXPECT_EQ(store.demand_millikbps(1000), 0);
  EXPECT_EQ(store.demand_kbps(1000), 0.0);
  store.unregister_server(1000);  // CF_CHECKs emptiness + zero demand
}

TEST(SessionStoreMembers, AttachOrderSurvivesMiddleUnlinks) {
  // The member list is threaded through the slabs in attach order, and the
  // O(1) intrusive unlink must preserve the relative order of the rest —
  // the order is load-bearing: failover processes members in attach order,
  // which drives RNG consumption downstream.
  SessionStore store;
  store.register_server(1000);
  std::vector<SessionIdx> idx;
  for (NodeId p = 0; p < 8; ++p) {
    idx.push_back(store.open(p, kGame, 3000.0));
    store.attach(idx.back(), 1000, 1.0 + p);
  }

  std::vector<NodeId> members;
  store.members(1000, members);
  EXPECT_EQ(members, (std::vector<NodeId>{0, 1, 2, 3, 4, 5, 6, 7}));

  // Unlink the head, an interior member, and the tail.
  store.detach(idx[0]);
  store.detach(idx[3]);
  store.detach(idx[7]);
  store.members(1000, members);
  EXPECT_EQ(members, (std::vector<NodeId>{1, 2, 4, 5, 6}));
  EXPECT_EQ(store.member_count(1000), 5u);

  // Re-attach: joins at the tail, exactly like the old served_ vector.
  store.attach(idx[3], 1000, 4.0);
  store.members(1000, members);
  EXPECT_EQ(members, (std::vector<NodeId>{1, 2, 4, 5, 6, 3}));
}

TEST(SessionStoreHandles, SlotReuseInvalidatesStaleHandles) {
  SessionStore store;
  const SessionIdx first = store.open(7, kGame, 3000.0);
  store.close(first);
  // The freed slot is recycled with a bumped generation: the new handle
  // differs and the stale one no longer resolves.
  const SessionIdx second = store.open(8, kGame, 3000.0);
  EXPECT_EQ(second.slot, first.slot);
  EXPECT_NE(second.gen, first.gen);
  EXPECT_FALSE(store.contains(7));
  EXPECT_TRUE(store.contains(8));
  EXPECT_THROW((void)store.player(first), std::logic_error);
}

TEST(SessionStoreFootprint, NoHeapPerSessionAndBoundedBytes) {
  SessionStore store;
  store.register_server(1000);
  for (NodeId p = 0; p < 1000; ++p) {
    const SessionIdx idx = store.open(p, kGame, 3000.0);
    store.attach(idx, 1000, 2.0);
    BackupList& b = store.mutable_backups(idx);
    for (NodeId sn = 0; sn < BackupList::kMaxBackups; ++sn) b.push_back(sn);
  }
  EXPECT_EQ(store.size(), 1000u);
  EXPECT_EQ(store.attached_count(), 1000u);
  // The whole store is a handful of parallel arrays: backups are inline, so
  // per-player footprint stays near sizeof of the row (~128 B/player with
  // slack for vector growth capacity).
  EXPECT_LT(store.bytes_reserved(), 1000u * 256u);
  EXPECT_GT(store.handle_load_factor(), 0.9);
}

}  // namespace
}  // namespace cloudfog::core
