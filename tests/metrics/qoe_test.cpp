#include "metrics/qoe.h"

#include <gtest/gtest.h>

namespace cloudfog::metrics {
namespace {

TEST(PlayerQoE, ContinuityDefaultsToOne) {
  PlayerQoE q;
  EXPECT_DOUBLE_EQ(q.continuity(), 1.0);
  EXPECT_TRUE(q.satisfied());
}

TEST(PlayerQoE, ContinuityIsOnTimeFraction) {
  PlayerQoE q;
  q.units_total = 100.0;
  q.units_on_time = 96.0;
  EXPECT_DOUBLE_EQ(q.continuity(), 0.96);
  EXPECT_TRUE(q.satisfied());
  q.units_on_time = 94.0;
  EXPECT_FALSE(q.satisfied());
}

TEST(PlayerQoE, SatisfactionThresholdExactlyAtBoundary) {
  PlayerQoE q;
  q.units_total = 100.0;
  q.units_on_time = 95.0;
  EXPECT_TRUE(q.satisfied());  // paper: ">= 95%"
}

TEST(QoECollector, LatencyAggregation) {
  QoECollector c;
  c.add_latency(1, 50.0);
  c.add_latency(1, 150.0);
  c.add_latency(2, 200.0);
  // Mean of per-player means: (100 + 200) / 2.
  EXPECT_DOUBLE_EQ(c.mean_response_latency_ms(), 150.0);
  EXPECT_EQ(c.player_count(), 2u);
}

TEST(QoECollector, PlayersWithoutLatencySamplesExcludedFromMean) {
  QoECollector c;
  c.add_latency(1, 100.0);
  c.add_units(2, 10.0, 10.0);  // player 2 has units but no latency sample
  EXPECT_DOUBLE_EQ(c.mean_response_latency_ms(), 100.0);
}

TEST(QoECollector, ContinuityAndSatisfaction) {
  QoECollector c;
  c.add_units(1, 100.0, 100.0);  // satisfied
  c.add_units(2, 100.0, 50.0);   // not satisfied
  EXPECT_DOUBLE_EQ(c.mean_continuity(), 0.75);
  EXPECT_DOUBLE_EQ(c.satisfied_fraction(), 0.5);
}

TEST(QoECollector, UnitsAccumulateAcrossCalls) {
  QoECollector c;
  c.add_units(1, 10.0, 10.0);
  c.add_units(1, 10.0, 0.0);
  EXPECT_DOUBLE_EQ(c.player(1).continuity(), 0.5);
}

TEST(QoECollector, EmptyCollectorDefaults) {
  QoECollector c;
  EXPECT_DOUBLE_EQ(c.mean_response_latency_ms(), 0.0);
  EXPECT_DOUBLE_EQ(c.mean_continuity(), 1.0);
  EXPECT_DOUBLE_EQ(c.satisfied_fraction(), 1.0);
}

TEST(QoECollector, CustomThreshold) {
  QoECollector c;
  c.add_units(1, 100.0, 80.0);
  EXPECT_DOUBLE_EQ(c.satisfied_fraction(0.75), 1.0);
  EXPECT_DOUBLE_EQ(c.satisfied_fraction(0.90), 0.0);
}

TEST(QoECollector, RejectsInvalidInputs) {
  QoECollector c;
  EXPECT_THROW(c.add_latency(1, -1.0), std::logic_error);
  EXPECT_THROW(c.add_units(1, 10.0, 11.0), std::logic_error);
  EXPECT_THROW(c.add_units(1, -1.0, 0.0), std::logic_error);
}

TEST(QoECollector, DirectPlayerAccessCreatesEntry) {
  QoECollector c;
  c.player(5).units_total += 1.0;
  EXPECT_EQ(c.player_count(), 1u);
  EXPECT_DOUBLE_EQ(c.player(5).continuity(), 0.0);
}

}  // namespace
}  // namespace cloudfog::metrics
