#include "game/game.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace cloudfog::game {
namespace {

TEST(GameCatalog, FiveGamesPairedWithQualityRows) {
  const auto& catalog = game_catalog();
  ASSERT_EQ(catalog.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    const GameProfile& g = catalog[static_cast<std::size_t>(i)];
    const QualityLevel& q = quality_for_level(i + 1);
    EXPECT_EQ(g.id, i);
    EXPECT_DOUBLE_EQ(g.latency_requirement_ms, q.latency_requirement_ms);
    EXPECT_DOUBLE_EQ(g.latency_tolerance, q.latency_tolerance);
    EXPECT_EQ(g.target_quality_level, q.level);
    EXPECT_FALSE(g.name.empty());
    EXPECT_FALSE(g.genre.empty());
  }
}

TEST(GameCatalog, LossToleranceIncreasesWithLatencyTolerance) {
  // Twitchy genres tolerate loss worst; turn-based best.
  const auto& catalog = game_catalog();
  for (std::size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_GT(catalog[i].loss_tolerance, catalog[i - 1].loss_tolerance);
  }
  for (const auto& g : catalog) {
    EXPECT_GT(g.loss_tolerance, 0.0);
    EXPECT_LE(g.loss_tolerance, 1.0);
  }
}

TEST(GameById, RejectsUnknownIds) {
  EXPECT_THROW(game_by_id(-1), std::logic_error);
  EXPECT_THROW(game_by_id(5), std::logic_error);
}

TEST(ChooseGame, MajorityWinsWithFullConformity) {
  util::Rng rng(1);
  const std::vector<GameId> friends{2, 2, 2, 4, 4};
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(choose_game(friends, rng, 1.0), 2);
}

TEST(ChooseGame, OfflineFriendsIgnored) {
  util::Rng rng(1);
  const std::vector<GameId> friends{-1, -1, 3};
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(choose_game(friends, rng, 1.0), 3);
}

TEST(ChooseGame, NoFriendsPicksUniformly) {
  util::Rng rng(2);
  std::set<GameId> seen;
  for (int i = 0; i < 500; ++i) seen.insert(choose_game({}, rng, 1.0));
  EXPECT_EQ(seen.size(), game_catalog().size());
}

TEST(ChooseGame, ZeroConformityIgnoresFriends) {
  util::Rng rng(3);
  const std::vector<GameId> friends{0, 0, 0, 0};
  std::set<GameId> seen;
  for (int i = 0; i < 500; ++i) seen.insert(choose_game(friends, rng, 0.0));
  EXPECT_EQ(seen.size(), game_catalog().size());
}

TEST(ChooseGame, PartialConformityMixes) {
  util::Rng rng(4);
  const std::vector<GameId> friends{1, 1, 1};
  int majority = 0;
  const int n = 10'000;
  for (int i = 0; i < n; ++i)
    if (choose_game(friends, rng, 0.5) == 1) ++majority;
  // 0.5 conformity + 0.5 * (1/5) uniform hit = 0.6 expected.
  EXPECT_NEAR(static_cast<double>(majority) / n, 0.6, 0.02);
}

TEST(ChooseGame, RejectsBadConformity) {
  util::Rng rng(5);
  EXPECT_THROW(choose_game({}, rng, -0.1), std::logic_error);
  EXPECT_THROW(choose_game({}, rng, 1.1), std::logic_error);
}

TEST(NextActionDelay, MeanMatchesRate) {
  util::Rng rng(6);
  double total = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) total += next_action_delay_ms(2.0, rng);
  // 2 actions/s -> mean 500 ms.
  EXPECT_NEAR(total / n, 500.0, 10.0);
}

TEST(NextActionDelay, RejectsNonPositiveRate) {
  util::Rng rng(6);
  EXPECT_THROW(next_action_delay_ms(0.0, rng), std::logic_error);
}

}  // namespace
}  // namespace cloudfog::game
