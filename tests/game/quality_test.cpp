#include "game/quality.h"

#include <gtest/gtest.h>

#include <tuple>

namespace cloudfog::game {
namespace {

// The paper's Figure 2, row by row.
struct Fig2Row {
  int level;
  int width;
  int height;
  double bitrate;
  double latency_req;
  double tolerance;
};

class QualityTableTest : public ::testing::TestWithParam<Fig2Row> {};

TEST_P(QualityTableTest, MatchesPaperFigure2) {
  const Fig2Row& row = GetParam();
  const QualityLevel& q = quality_for_level(row.level);
  EXPECT_EQ(q.level, row.level);
  EXPECT_EQ(q.width, row.width);
  EXPECT_EQ(q.height, row.height);
  EXPECT_DOUBLE_EQ(q.bitrate_kbps, row.bitrate);
  EXPECT_DOUBLE_EQ(q.latency_requirement_ms, row.latency_req);
  EXPECT_DOUBLE_EQ(q.latency_tolerance, row.tolerance);
}

INSTANTIATE_TEST_SUITE_P(
    PaperFigure2, QualityTableTest,
    ::testing::Values(Fig2Row{1, 288, 216, 300.0, 30.0, 0.6},
                      Fig2Row{2, 384, 216, 500.0, 50.0, 0.7},
                      Fig2Row{3, 640, 480, 800.0, 70.0, 0.8},
                      Fig2Row{4, 720, 486, 1200.0, 90.0, 0.9},
                      Fig2Row{5, 1280, 720, 1800.0, 110.0, 1.0}));

TEST(QualityTable, FiveLevelsSorted) {
  const auto& table = quality_table();
  ASSERT_EQ(table.size(), 5u);
  for (std::size_t i = 1; i < table.size(); ++i) {
    EXPECT_GT(table[i].bitrate_kbps, table[i - 1].bitrate_kbps);
    EXPECT_GT(table[i].latency_requirement_ms,
              table[i - 1].latency_requirement_ms);
    EXPECT_GT(table[i].latency_tolerance, table[i - 1].latency_tolerance);
  }
}

TEST(QualityTable, LevelOutOfRangeRejected) {
  EXPECT_THROW(quality_for_level(0), std::logic_error);
  EXPECT_THROW(quality_for_level(6), std::logic_error);
}

TEST(MaxLevelForLatency, PaperExample) {
  // Paper Section III-B: a 90 ms latency requirement maps to 1200 kbps,
  // i.e. level 4.
  EXPECT_EQ(max_level_for_latency(90.0), 4);
}

TEST(MaxLevelForLatency, ExactBoundaries) {
  EXPECT_EQ(max_level_for_latency(30.0), 1);
  EXPECT_EQ(max_level_for_latency(50.0), 2);
  EXPECT_EQ(max_level_for_latency(70.0), 3);
  EXPECT_EQ(max_level_for_latency(110.0), 5);
}

TEST(MaxLevelForLatency, BetweenLevelsRoundsDown) {
  EXPECT_EQ(max_level_for_latency(89.0), 3);
  EXPECT_EQ(max_level_for_latency(109.9), 4);
}

TEST(MaxLevelForLatency, BelowLowestClampsToLevelOne) {
  EXPECT_EQ(max_level_for_latency(10.0), 1);
}

TEST(MaxLevelForLatency, AboveHighestIsLevelFive) {
  EXPECT_EQ(max_level_for_latency(500.0), 5);
}

TEST(AdjustUpBeta, IsLargestRelativeStep) {
  // Steps: 500/300-1=0.667, 800/500-1=0.6, 1200/800-1=0.5, 1800/1200-1=0.5.
  EXPECT_NEAR(adjust_up_beta(), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace cloudfog::game
