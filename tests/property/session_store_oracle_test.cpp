// Randomized churn oracle for the SoA session slab (DESIGN.md §12): drive
// SessionStore and a naive map-based reference model through the same
// random operation stream and demand they agree exactly — sizes, per-player
// rows, per-server member order, and the integer demand ledger. The
// reference is the data structure the slab replaced, kept deliberately
// simple (std::map everywhere, vectors erased by scan, demand summed from
// scratch at every check), so any divergence indicts the slab's free-list,
// generation, or intrusive-link bookkeeping rather than the model.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/session_store.h"
#include "util/rng.h"

namespace cloudfog::core {
namespace {

struct RefSession {
  game::GameId game = -1;
  std::int64_t bitrate_mkbps = 0;
  NodeId server = kInvalidNode;  // kInvalidNode = on cloud
  TimeMs delay_ms = 0.0;
};

/// The pre-slab book: maps and scan-erased vectors.
struct Reference {
  std::map<NodeId, RefSession> sessions;
  std::map<NodeId, std::vector<NodeId>> served;  // attach order

  bool server_registered(NodeId s) const { return served.contains(s); }

  std::int64_t demand_mkbps(NodeId server) const {
    // Summed from scratch: the reference has no incremental ledger to drift.
    std::int64_t sum = 0;
    const auto it = served.find(server);
    if (it == served.end()) return 0;
    for (NodeId p : it->second) sum += sessions.at(p).bitrate_mkbps;
    return sum;
  }
};

class SessionStoreOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SessionStoreOracle, AgreesWithNaiveMapReferenceUnderChurn) {
  util::Rng rng(GetParam());
  SessionStore store;
  Reference ref;

  // Small id spaces force heavy slot/server reuse — the interesting regime
  // for generation tags and free lists.
  constexpr NodeId kPlayers = 64;
  constexpr NodeId kServerBase = 1000;
  constexpr NodeId kServers = 8;
  // Exactly millikbps-representable bitrates, fractional on purpose.
  const double bitrates[] = {400.0, 3000.0, 4500.1, 8000.0, 0.3};

  const auto check_agreement = [&] {
    std::size_t attached = 0;
    for (const auto& [p, rs] : ref.sessions) {
      if (rs.server != kInvalidNode) ++attached;
      ASSERT_TRUE(store.contains(p));
      const SessionIdx idx = store.index_of(p);
      ASSERT_TRUE(idx.valid());
      const Session snap = store.snapshot(idx);
      EXPECT_EQ(snap.player, p);
      EXPECT_EQ(snap.game, rs.game);
      EXPECT_EQ(snap.supernode, rs.server);
      EXPECT_EQ(snap.stream_delay_ms, rs.delay_ms);
      EXPECT_EQ(SessionStore::to_millikbps(snap.bitrate_kbps),
                rs.bitrate_mkbps);
      const SessionStore::ServeState serve = store.serve_state(idx);
      EXPECT_EQ(serve.supernode, rs.server);
      EXPECT_EQ(serve.delay_ms, rs.delay_ms);
    }
    EXPECT_EQ(store.size(), ref.sessions.size());
    EXPECT_EQ(store.attached_count(), attached);
    EXPECT_EQ(store.cloud_count(), ref.sessions.size() - attached);
    for (NodeId p = 0; p < kPlayers; ++p) {
      EXPECT_EQ(store.contains(p), ref.sessions.contains(p));
    }
    std::vector<NodeId> members;
    for (NodeId s = kServerBase; s < kServerBase + kServers; ++s) {
      EXPECT_EQ(store.server_registered(s), ref.server_registered(s));
      if (!ref.server_registered(s)) {
        EXPECT_EQ(store.demand_millikbps(s), 0);
        EXPECT_EQ(store.member_count(s), 0u);
        continue;
      }
      store.members(s, members);
      EXPECT_EQ(members, ref.served.at(s)) << "member order for server " << s;
      EXPECT_EQ(store.member_count(s), ref.served.at(s).size());
      EXPECT_EQ(store.demand_millikbps(s), ref.demand_mkbps(s));
    }
  };

  for (int step = 0; step < 1'000; ++step) {
    const double dice = rng.uniform();
    if (dice < 0.30) {  // open
      const NodeId p = static_cast<NodeId>(rng.index(kPlayers));
      if (!ref.sessions.contains(p)) {
        const auto game = static_cast<game::GameId>(rng.uniform_int(0, 4));
        const double kbps = bitrates[rng.index(std::size(bitrates))];
        store.open(p, game, kbps);
        ref.sessions[p] =
            RefSession{game, SessionStore::to_millikbps(kbps), kInvalidNode,
                       0.0};
      }
    } else if (dice < 0.55) {  // close (detaching first, like player_leave)
      if (!ref.sessions.empty()) {
        auto it = ref.sessions.begin();
        std::advance(it, static_cast<long>(rng.index(ref.sessions.size())));
        const NodeId p = it->first;
        const SessionIdx idx = store.index_of(p);
        if (it->second.server != kInvalidNode) {
          store.detach(idx);
          auto& v = ref.served.at(it->second.server);
          v.erase(std::find(v.begin(), v.end(), p));
        }
        store.close(idx);
        ref.sessions.erase(it);
      }
    } else if (dice < 0.72) {  // attach a cloud session
      std::vector<NodeId> cloud, servers;
      for (const auto& [p, rs] : ref.sessions) {
        if (rs.server == kInvalidNode) cloud.push_back(p);
      }
      for (const auto& [s, v] : ref.served) servers.push_back(s);
      if (!cloud.empty() && !servers.empty()) {
        const NodeId p = cloud[rng.index(cloud.size())];
        const NodeId s = servers[rng.index(servers.size())];
        const TimeMs delay = rng.uniform(1.0, 40.0);
        store.attach(store.index_of(p), s, delay);
        ref.sessions.at(p).server = s;
        ref.sessions.at(p).delay_ms = delay;
        ref.served.at(s).push_back(p);
      }
    } else if (dice < 0.85) {  // detach an attached session
      std::vector<NodeId> attached;
      for (const auto& [p, rs] : ref.sessions) {
        if (rs.server != kInvalidNode) attached.push_back(p);
      }
      if (!attached.empty()) {
        const NodeId p = attached[rng.index(attached.size())];
        store.detach(store.index_of(p));
        auto& v = ref.served.at(ref.sessions.at(p).server);
        v.erase(std::find(v.begin(), v.end(), p));
        ref.sessions.at(p).server = kInvalidNode;
        ref.sessions.at(p).delay_ms = 0.0;
      }
    } else if (dice < 0.93) {  // register a server
      const NodeId s = kServerBase + static_cast<NodeId>(rng.index(kServers));
      if (!ref.server_registered(s)) {
        store.register_server(s);
        ref.served[s] = {};
      }
    } else {  // unregister an empty server
      std::vector<NodeId> empty;
      for (const auto& [s, v] : ref.served) {
        if (v.empty()) empty.push_back(s);
      }
      if (!empty.empty()) {
        const NodeId s = empty[rng.index(empty.size())];
        store.unregister_server(s);
        ref.served.erase(s);
      }
    }
    if (step % 50 == 0) check_agreement();
  }
  check_agreement();
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, SessionStoreOracle,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace cloudfog::core
