// Property tests of the virtual-world substrate: conservation and bound
// invariants under random action streams.
#include <gtest/gtest.h>

#include <set>

#include "world/interest.h"
#include "world/partition.h"
#include "world/virtual_world.h"

namespace cloudfog::world {
namespace {

class WorldInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorldInvariants, RandomPlayKeepsStateSane) {
  util::Rng rng(GetParam());
  WorldConfig config;
  config.width = 2'000.0;
  config.height = 1'500.0;
  config.region_size = 200.0;
  VirtualWorld w(config);

  std::vector<AvatarId> avatars;
  for (int i = 0; i < 60; ++i) avatars.push_back(w.spawn(rng));

  for (int t = 0; t < 50; ++t) {
    for (AvatarId a : avatars) {
      const double dice = rng.uniform();
      if (dice < 0.5) {
        w.submit({a, ActionType::kMove, rng.uniform(-1.0, 1.0),
                  rng.uniform(-1.0, 1.0)});
      } else if (dice < 0.7) {
        w.submit({a, ActionType::kStrike, 0.0, 0.0});
      } else if (dice < 0.8) {
        w.submit({a, ActionType::kEmote, 0.0, 0.0});
      }
    }
    const TickDelta delta = w.tick(rng);

    // Population is conserved (strikes respawn, never remove).
    EXPECT_EQ(w.population(), avatars.size());
    // Every avatar stays on the map with sane health.
    for (AvatarId a : avatars) {
      const Avatar& av = w.avatar(a);
      EXPECT_GE(av.position.x, 0.0);
      EXPECT_LE(av.position.x, config.width);
      EXPECT_GE(av.position.y, 0.0);
      EXPECT_LE(av.position.y, config.height);
      EXPECT_GT(av.health, 0.0);
      EXPECT_LE(av.health, 100.0);
    }
    // Delta entries reference live avatars, carry their true region, and
    // are strictly id-sorted (no duplicates).
    std::set<AvatarId> seen;
    for (const AvatarDelta& d : delta.changes) {
      EXPECT_TRUE(w.exists(d.id));
      EXPECT_TRUE(seen.insert(d.id).second);
      EXPECT_LT(d.region, w.region_count());
    }
    // Delta size formula matches the change count.
    EXPECT_NEAR(delta.size_kbit(),
                bytes_to_kbit(16.0 + 24.0 * static_cast<double>(
                                                delta.changes.size())),
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorldInvariants,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

class InterestInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InterestInvariants, FilteredUpdatesArePerSupernodeSubsets) {
  util::Rng rng(GetParam());
  WorldConfig config;
  config.width = config.height = 1'000.0;
  config.region_size = 100.0;
  VirtualWorld w(config);
  InterestManager interest(w, 1);

  std::vector<AvatarId> avatars;
  for (NodeId sn = 0; sn < 8; ++sn) {
    for (int p = 0; p < 3; ++p) {
      const AvatarId a = w.spawn(rng);
      avatars.push_back(a);
      interest.track(sn, a);
    }
  }

  for (int t = 0; t < 20; ++t) {
    for (AvatarId a : avatars) {
      w.submit({a, ActionType::kMove, rng.uniform(-1.0, 1.0),
                rng.uniform(-1.0, 1.0)});
    }
    const TickDelta delta = w.tick(rng);
    interest.refresh();

    std::set<AvatarId> delta_ids;
    for (const auto& c : delta.changes) delta_ids.insert(c.id);
    double filtered_total = 0.0;
    for (NodeId sn = 0; sn < 8; ++sn) {
      const auto update = interest.update_for(sn, delta);
      // Subset property: every filtered entry is in the full delta and in a
      // subscribed region.
      for (const auto& c : update) {
        EXPECT_TRUE(delta_ids.contains(c.id));
        EXPECT_TRUE(interest.subscription(sn)[c.region]);
      }
      // A supernode always sees its own players' changes (it is subscribed
      // to their regions by construction).
      EXPECT_LE(update.size(), delta.changes.size());
      filtered_total += static_cast<double>(update.size());
    }
    // Filtering never exceeds broadcast volume.
    const auto sizes = interest.feed_sizes(delta);
    EXPECT_LE(sizes.filtered_kbit, sizes.broadcast_kbit + 1e-9);
    (void)filtered_total;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterestInvariants,
                         ::testing::Values(10u, 20u, 30u));

class PartitionInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionInvariants, KdCoversAndBalances) {
  util::Rng rng(GetParam());
  // Random mixture populations of varying clustering.
  std::vector<Position> population;
  const double hotspot = rng.uniform(0.2, 0.9);
  for (int i = 0; i < 3'000; ++i) {
    if (rng.bernoulli(hotspot)) {
      population.push_back(
          {rng.uniform(100.0, 300.0), rng.uniform(700.0, 900.0)});
    } else {
      population.push_back(
          {rng.uniform(0.0, 1'000.0), rng.uniform(0.0, 1'000.0)});
    }
  }
  for (int depth : {1, 2, 3}) {
    KdPartition kd(population, depth);
    const auto stats = kd.stats(population);
    // Total load conserved across servers.
    std::size_t total = 0;
    for (std::size_t l : stats.load) total += l;
    EXPECT_EQ(total, population.size());
    // Median splits keep imbalance tight for any mixture.
    EXPECT_LT(stats.imbalance(), 1.15) << "depth " << depth;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionInvariants,
                         ::testing::Values(100u, 200u, 300u, 400u));

}  // namespace
}  // namespace cloudfog::world
