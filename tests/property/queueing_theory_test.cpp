// Validation against queueing theory: the discrete-event stack (Simulator +
// packet sender) must reproduce closed-form M/D/1 and M/M/1 results. This
// pins the substrate's correctness to something stronger than unit
// expectations — if event ordering, timing or the serial-sender logic were
// subtly wrong, these laws would break.
#include <gtest/gtest.h>

#include <unordered_map>

#include "core/supernode_sender.h"
#include "sim/simulator.h"
#include "stream/queued_sender.h"
#include "stream/video.h"
#include "util/rng.h"
#include "util/stats.h"

namespace cloudfog {
namespace {

struct MD1Case {
  double utilization;  // rho
  std::uint64_t seed;
};

class MD1Validation : public ::testing::TestWithParam<MD1Case> {};

// Poisson arrivals of fixed-size single-packet segments into the FIFO
// packet sender = an M/D/1 queue. Mean wait W_q = rho * S / (2 * (1 - rho)),
// sojourn T = W_q + S.
TEST_P(MD1Validation, MeanSojournMatchesClosedForm) {
  const MD1Case& param = GetParam();
  const Kbps uplink = 12'000.0;  // one 12-kbit packet per ms
  const TimeMs service_ms = stream::kPacketKbit / uplink * 1000.0;  // 1 ms
  const double lambda_per_ms = param.utilization / service_ms;

  sim::Simulator sim;
  util::Rng rng(param.seed);
  util::Rng arrivals = rng.fork("arrivals");
  stream::SegmentFactory factory;
  util::RunningStats sojourn;
  std::unordered_map<std::uint64_t, TimeMs> submitted_at;

  core::SupernodeSender sender(
      sim, uplink, core::SupernodeSender::Discipline::kFifo,
      core::DeadlineSchedulerConfig{},
      [](NodeId, util::Rng&) { return 0.0; },  // no propagation: pure queue
      [&](const core::PacketDelivery& d) {
        sojourn.add(d.sent_ms - submitted_at.at(d.segment_id));
      },
      rng.fork("sender"));

  // Drive ~60,000 arrivals.
  const int n = 60'000;
  TimeMs t = 0.0;
  for (int i = 0; i < n; ++i) {
    t += arrivals.exponential(lambda_per_ms);
    sim.schedule_at(t, [&] {
      // Single-packet segment (12 kbit), deadline far away: no drops.
      auto seg = factory.make(1, 4, 1, 33.3, sim.now());
      seg.size_kbit = stream::kPacketKbit;
      seg.deadline_ms = sim.now() + 1e9;
      submitted_at[seg.id] = sim.now();
      sender.submit(seg);
    });
  }
  sim.run_all();

  const double rho = param.utilization;
  const double expected_sojourn =
      service_ms * (1.0 + rho / (2.0 * (1.0 - rho)));
  ASSERT_EQ(sojourn.count(), static_cast<std::size_t>(n));
  // High-rho waits have heavy variance; the sample-mean error at 60k
  // arrivals warrants a wider band than the fluid checks below use.
  EXPECT_NEAR(sojourn.mean(), expected_sojourn, expected_sojourn * 0.12)
      << "rho = " << rho;
}

INSTANTIATE_TEST_SUITE_P(Rhos, MD1Validation,
                         ::testing::Values(MD1Case{0.3, 1}, MD1Case{0.5, 2},
                                           MD1Case{0.7, 3}, MD1Case{0.8, 4}));

// The fluid FIFO QueuedSender with Poisson single-packet arrivals is the
// same M/D/1 system; its analytic schedule must agree with theory too.
class FluidMD1 : public ::testing::TestWithParam<MD1Case> {};

TEST_P(FluidMD1, QueuedSenderMatchesClosedForm) {
  const MD1Case& param = GetParam();
  const Kbps capacity = 12'000.0;
  const TimeMs service_ms = 1.0;  // 12 kbit at 12 Mbps
  const double lambda_per_ms = param.utilization / service_ms;

  stream::QueuedSender sender(capacity);
  util::Rng rng(param.seed + 100);
  util::RunningStats sojourn;
  TimeMs t = 0.0;
  for (int i = 0; i < 200'000; ++i) {
    t += rng.exponential(lambda_per_ms);
    const auto sched = sender.enqueue(t, stream::kPacketKbit);
    sojourn.add(sched.end - sched.enqueued);
  }
  const double rho = param.utilization;
  const double expected = service_ms * (1.0 + rho / (2.0 * (1.0 - rho)));
  EXPECT_NEAR(sojourn.mean(), expected, expected * 0.05) << "rho = " << rho;
}

INSTANTIATE_TEST_SUITE_P(Rhos, FluidMD1,
                         ::testing::Values(MD1Case{0.3, 1}, MD1Case{0.5, 2},
                                           MD1Case{0.7, 3}, MD1Case{0.8, 4}));

// M/M/1 via exponential segment sizes on the fluid sender:
// T = S / (1 - rho).
class FluidMM1 : public ::testing::TestWithParam<MD1Case> {};

TEST_P(FluidMM1, ExponentialServiceMatchesClosedForm) {
  const MD1Case& param = GetParam();
  const Kbps capacity = 12'000.0;
  const Kbit mean_size = 12.0;    // mean service 1 ms
  const TimeMs service_ms = 1.0;
  const double lambda_per_ms = param.utilization / service_ms;

  stream::QueuedSender sender(capacity);
  util::Rng rng(param.seed + 200);
  util::RunningStats sojourn;
  TimeMs t = 0.0;
  for (int i = 0; i < 200'000; ++i) {
    t += rng.exponential(lambda_per_ms);
    const Kbit size = rng.exponential(1.0 / mean_size);
    const auto sched = sender.enqueue(t, size);
    sojourn.add(sched.end - sched.enqueued);
  }
  const double expected = service_ms / (1.0 - param.utilization);
  EXPECT_NEAR(sojourn.mean(), expected, expected * 0.06)
      << "rho = " << param.utilization;
}

INSTANTIATE_TEST_SUITE_P(Rhos, FluidMM1,
                         ::testing::Values(MD1Case{0.3, 1}, MD1Case{0.5, 2},
                                           MD1Case{0.7, 3}));

}  // namespace
}  // namespace cloudfog
