// Randomized lifecycle fuzz of the SessionManager: arbitrary interleavings
// of player joins/leaves, supernode joins/departures and rebalance passes
// must preserve the session book's invariants.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/session_manager.h"

namespace cloudfog::core {
namespace {

struct FuzzCase {
  std::uint64_t seed;
  bool failover;
  bool cooperation;
};

class SessionFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(SessionFuzz, InvariantsHoldUnderRandomLifecycles) {
  const FuzzCase& param = GetParam();
  util::Rng rng(param.seed);

  // A metro-ish topology: 40 player hosts and 12 supernode hosts close by.
  net::LatencyParams lp = net::LatencyParams::simulation_profile(param.seed);
  net::Topology topo((net::LatencyModel(lp)));
  std::vector<NodeId> players, supernode_hosts;
  for (int i = 0; i < 40; ++i) {
    players.push_back(topo.add_host(
        net::HostRole::kPlayer,
        {39.9 + rng.uniform(-0.3, 0.3), -75.2 + rng.uniform(-0.3, 0.3)},
        rng.uniform(2.0, 20.0)));
  }
  for (int i = 0; i < 12; ++i) {
    supernode_hosts.push_back(topo.add_host(
        net::HostRole::kPlayer,
        {39.9 + rng.uniform(-0.3, 0.3), -75.2 + rng.uniform(-0.3, 0.3)},
        rng.uniform(2.0, 20.0), "sn", 3.0));
  }

  SessionManagerConfig config;
  config.enable_failover = param.failover;
  config.enable_cooperation = param.cooperation;
  config.shed_utilization = 0.3;
  SessionManager mgr(topo, SupernodeManagerConfig{}, config, rng.fork("mgr"));

  std::set<NodeId> joined_players;
  std::set<NodeId> up_supernodes;
  std::map<NodeId, int> capacities;

  auto check_invariants = [&] {
    // 1. Session accounting adds up.
    EXPECT_EQ(mgr.session_count(), joined_players.size());
    EXPECT_EQ(mgr.cloud_sessions() + mgr.supernode_sessions(),
              mgr.session_count());
    // 2. Every session's supernode is live, within capacity, and demand
    //    matches the sum of its sessions' bitrates.
    std::map<NodeId, int> assigned;
    std::map<NodeId, double> demand;
    for (NodeId p : joined_players) {
      const Session& s = mgr.session(p);
      if (s.on_cloud()) continue;
      EXPECT_TRUE(up_supernodes.contains(s.supernode));
      ++assigned[s.supernode];
      demand[s.supernode] += s.bitrate_kbps;
    }
    for (const auto& [sn, count] : assigned) {
      EXPECT_LE(count, capacities.at(sn));
      EXPECT_EQ(mgr.manager().record(sn).assigned, count);
      EXPECT_NEAR(mgr.demand_kbps(sn), demand[sn], 1e-6);
    }
    // 3. Live supernodes without sessions carry zero demand.
    for (NodeId sn : up_supernodes) {
      if (!assigned.contains(sn)) {
        EXPECT_NEAR(mgr.demand_kbps(sn), 0.0, 1e-6);
      }
    }
  };

  for (int step = 0; step < 600; ++step) {
    const double dice = rng.uniform();
    if (dice < 0.35) {  // player join
      const NodeId p = players[rng.index(players.size())];
      if (!joined_players.contains(p)) {
        mgr.player_join(p, static_cast<game::GameId>(rng.uniform_int(0, 4)));
        joined_players.insert(p);
      }
    } else if (dice < 0.6) {  // player leave
      if (!joined_players.empty()) {
        auto it = joined_players.begin();
        std::advance(it, static_cast<long>(rng.index(joined_players.size())));
        mgr.player_leave(*it);
        joined_players.erase(it);
      }
    } else if (dice < 0.75) {  // supernode join
      const NodeId sn = supernode_hosts[rng.index(supernode_hosts.size())];
      if (!up_supernodes.contains(sn)) {
        const int capacity = static_cast<int>(rng.uniform_int(1, 6));
        mgr.supernode_join(sn, capacity, capacity * 4'000.0);
        up_supernodes.insert(sn);
        capacities[sn] = capacity;
      }
    } else if (dice < 0.9) {  // supernode leave
      if (!up_supernodes.empty()) {
        auto it = up_supernodes.begin();
        std::advance(it, static_cast<long>(rng.index(up_supernodes.size())));
        const FailoverReport report = mgr.supernode_leave(*it);
        EXPECT_EQ(report.players_affected, report.recovered_to_backup +
                                               report.reassigned +
                                               report.fell_to_cloud);
        up_supernodes.erase(it);
      }
    } else {  // cooperation pass
      (void)mgr.rebalance();
    }
    if (step % 25 == 0) check_invariants();
  }
  check_invariants();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SessionFuzz,
    ::testing::Values(FuzzCase{1, true, false}, FuzzCase{2, false, false},
                      FuzzCase{3, true, true}, FuzzCase{4, false, true},
                      FuzzCase{5, true, true}, FuzzCase{6, true, false},
                      FuzzCase{7, false, false}, FuzzCase{8, true, true}));

}  // namespace
}  // namespace cloudfog::core
