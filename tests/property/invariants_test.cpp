// Property-based invariant tests: randomized workloads swept over seeds and
// configurations via TEST_P. Each suite pins one conservation law or bound
// that must hold for *every* input, not just the examples unit tests pick.
#include <gtest/gtest.h>

#include <map>

#include "core/deadline_scheduler.h"
#include "core/rate_adaptation.h"
#include "core/supernode_sender.h"
#include "net/uplink.h"
#include "sim/simulator.h"
#include "stream/queued_sender.h"
#include "stream/video.h"
#include "util/rng.h"

namespace cloudfog {
namespace {

// ---------------------------------------------------------------------------
// SupernodeSender conservation: submitted == delivered + dropped + lost,
// across discipline x loss x overload combinations.
struct SenderCase {
  std::uint64_t seed;
  bool deadline_discipline;
  double loss_rate;
  Kbps uplink;
};

class SenderConservation : public ::testing::TestWithParam<SenderCase> {};

TEST_P(SenderConservation, EveryPacketIsAccounted) {
  const SenderCase& param = GetParam();
  sim::Simulator sim;
  util::Rng rng(param.seed);
  stream::SegmentFactory factory;
  std::uint64_t delivered = 0, lost = 0;
  core::SupernodeSender sender(
      sim, param.uplink,
      param.deadline_discipline ? core::SupernodeSender::Discipline::kDeadline
                                : core::SupernodeSender::Discipline::kFifo,
      core::DeadlineSchedulerConfig{},
      [](NodeId, util::Rng& r) { return 5.0 + r.uniform() * 10.0; },
      [&](const core::PacketDelivery& d) { d.lost ? ++lost : ++delivered; },
      rng.fork("prop"));
  if (param.loss_rate > 0.0) {
    sender.set_loss_model(
        [&](NodeId, std::uint64_t) { return param.loss_rate; });
  }

  // Random segment stream: sizes, games and timings all vary.
  util::Rng workload = rng.fork("workload");
  TimeMs now = 0.0;
  for (int i = 0; i < 120; ++i) {
    now += workload.uniform(1.0, 40.0);
    const auto game = static_cast<game::GameId>(workload.uniform_int(0, 4));
    const int level = static_cast<int>(workload.uniform_int(1, 5));
    sim.schedule_at(now, [&, game, level] {
      sim::Simulator& s = sim;
      auto seg = factory.make(static_cast<NodeId>(workload.uniform_int(0, 7)),
                              game, level, 33.3, s.now());
      sender.submit(seg);
    });
  }
  sim.run_all();

  EXPECT_EQ(sender.packets_submitted(),
            delivered + lost + sender.packets_dropped());
  EXPECT_EQ(sender.packets_lost(), lost);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SenderConservation,
    ::testing::Values(SenderCase{1, false, 0.0, 20'000.0},
                      SenderCase{2, true, 0.0, 20'000.0},
                      SenderCase{3, false, 0.05, 20'000.0},
                      SenderCase{4, true, 0.05, 20'000.0},
                      SenderCase{5, true, 0.0, 2'000.0},   // heavy overload
                      SenderCase{6, true, 0.10, 2'000.0},
                      SenderCase{7, false, 0.10, 2'000.0},
                      SenderCase{8, true, 0.0, 200'000.0}  // no contention
                      ));

// ---------------------------------------------------------------------------
// DeadlineScheduler: per-segment drops never exceed the loss-tolerance
// budget, for random overloaded streams.
class SchedulerBudget : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerBudget, DropsStayWithinToleranceBudgets) {
  util::Rng rng(GetParam());
  core::DeadlineScheduler sched(1'000.0, core::DeadlineSchedulerConfig{});
  stream::SegmentFactory factory;
  std::map<std::uint64_t, int> drops_per_segment;
  std::map<std::uint64_t, std::pair<int, double>> segment_info;  // packets, tol
  sched.set_drop_observer([&](const stream::VideoSegment& seg, int) {
    ++drops_per_segment[seg.id];
  });

  TimeMs now = 0.0;
  for (int i = 0; i < 60; ++i) {
    now += rng.uniform(0.0, 20.0);
    const auto game = static_cast<game::GameId>(rng.uniform_int(0, 4));
    const int level = static_cast<int>(rng.uniform_int(1, 5));
    auto seg = factory.make(static_cast<NodeId>(i % 5), game, level, 33.3, now);
    segment_info[seg.id] = {stream::packet_count(seg.size_kbit),
                            seg.loss_tolerance};
    sched.enqueue(seg, now);
    // Interleave some transmission progress.
    for (int p = 0; p < 2; ++p) (void)sched.pop_packet(now);
  }
  for (const auto& [id, dropped] : drops_per_segment) {
    const auto& [packets, tolerance] = segment_info.at(id);
    EXPECT_LE(dropped, static_cast<int>(tolerance * packets))
        << "segment " << id;
  }
  EXPECT_FALSE(drops_per_segment.empty()) << "workload never overloaded";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerBudget,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

// ---------------------------------------------------------------------------
// RateAdaptationController: the level never leaves [1, target] no matter
// what estimate stream it sees.
struct AdaptationCase {
  std::uint64_t seed;
  game::GameId game;
};

class AdaptationBounds : public ::testing::TestWithParam<AdaptationCase> {};

TEST_P(AdaptationBounds, LevelAlwaysWithinBounds) {
  const auto& param = GetParam();
  util::Rng rng(param.seed);
  const auto& profile = game::game_by_id(param.game);
  core::RateAdaptationConfig config;
  config.consecutive_estimates = static_cast<int>(rng.uniform_int(1, 10));
  core::RateAdaptationController ctrl(profile, config);
  for (int i = 0; i < 2'000; ++i) {
    // Adversarial mixture: calm, starved and flooded regimes.
    const double r = rng.bernoulli(0.3)   ? rng.uniform(0.0, 0.4)
                     : rng.bernoulli(0.5) ? rng.uniform(0.5, 1.5)
                                          : rng.uniform(2.0, 10.0);
    ctrl.observe(r);
    EXPECT_GE(ctrl.level(), game::kMinQualityLevel);
    EXPECT_LE(ctrl.level(), profile.target_quality_level);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdaptationBounds,
    ::testing::Values(AdaptationCase{1, 0}, AdaptationCase{2, 1},
                      AdaptationCase{3, 2}, AdaptationCase{4, 3},
                      AdaptationCase{5, 4}, AdaptationCase{6, 4}));

// ---------------------------------------------------------------------------
// RateAdaptationController Eq-7 estimator: the estimate stays in [0, 4 tau].
class EstimatorBounds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EstimatorBounds, EstimateClamped) {
  util::Rng rng(GetParam());
  core::RateAdaptationController ctrl(game::game_by_id(4),
                                      core::RateAdaptationConfig{});
  const Kbit tau = 60.0;
  for (int i = 0; i < 1'000; ++i) {
    ctrl.observe_rates(rng.uniform(50.0, 500.0), rng.uniform(0.0, 5'000.0),
                       rng.uniform(100.0, 2'000.0), tau);
    EXPECT_GE(ctrl.estimated_buffer_kbit(), 0.0);
    EXPECT_LE(ctrl.estimated_buffer_kbit(), 4.0 * tau);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorBounds,
                         ::testing::Values(3u, 13u, 23u, 33u));

// ---------------------------------------------------------------------------
// QueuedSender: schedules are causal and the link never rewinds.
class QueuedSenderCausality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueuedSenderCausality, SchedulesAreMonotone) {
  util::Rng rng(GetParam());
  stream::QueuedSender sender(rng.uniform(500.0, 50'000.0));
  TimeMs now = 0.0;
  TimeMs last_end = 0.0;
  for (int i = 0; i < 500; ++i) {
    now += rng.uniform(0.0, 30.0);
    const Kbps cap = rng.bernoulli(0.5) ? rng.uniform(100.0, 10'000.0) : 0.0;
    const auto sched = sender.enqueue(now, rng.uniform(0.0, 400.0), cap);
    EXPECT_GE(sched.start, sched.enqueued);
    EXPECT_GE(sched.end, sched.start);
    EXPECT_GE(sched.start, last_end);  // FIFO: no overlap on the link
    last_end = sched.end;
    EXPECT_GE(sender.busy_until(now), now);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueuedSenderCausality,
                         ::testing::Values(7u, 17u, 27u, 37u));

// ---------------------------------------------------------------------------
// FairShareUplink: everything submitted is eventually delivered, and the
// deadline accounting never exceeds the flow size.
class UplinkConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UplinkConservation, AllBitsDelivered) {
  util::Rng rng(GetParam());
  sim::Simulator sim;
  net::FairShareUplink uplink(sim, rng.uniform(1'000.0, 20'000.0));
  double submitted = 0.0;
  int completions = 0;
  for (int i = 0; i < 80; ++i) {
    const TimeMs at = rng.uniform(0.0, 500.0);
    const Kbit size = rng.uniform(1.0, 300.0);
    const TimeMs deadline = rng.bernoulli(0.5) ? at + rng.uniform(1.0, 400.0) : 0.0;
    submitted += size;
    sim.schedule_at(at, [&, size, deadline] {
      uplink.start_flow(size, deadline, [&](const net::FlowResult& r) {
        ++completions;
        EXPECT_LE(r.delivered_by_deadline, r.size + 1e-9);
        EXPECT_GE(r.delivered_by_deadline, -1e-9);
      });
    });
  }
  sim.run_all();
  EXPECT_EQ(completions, 80);
  EXPECT_NEAR(uplink.total_delivered(), submitted, 1e-6);
  EXPECT_EQ(uplink.active_flows(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UplinkConservation,
                         ::testing::Values(5u, 15u, 25u, 35u, 45u));

}  // namespace
}  // namespace cloudfog
