"""Lexer unit tests: the scrubber must blank exactly the non-code text
while preserving line structure and column positions."""

import unittest

import support  # noqa: F401  (sys.path bootstrap)

from cflint.lexer import scrub


class ScrubBasics(unittest.TestCase):
    def test_line_comment_blanked_and_captured(self):
        r = scrub("int x = 1;  // rand() lives here\nint y = 2;\n")
        self.assertIn("int x = 1;", r.code)
        self.assertNotIn("rand", r.code)
        self.assertEqual(len(r.comments), 1)
        self.assertEqual(r.comments[0].line, 1)
        self.assertEqual(r.comments[0].text, "rand() lives here")

    def test_block_comment_spanning_lines(self):
        src = "a();\n/* std::thread t;\n   more text */ b();\n"
        r = scrub(src)
        self.assertNotIn("thread", r.code)
        self.assertIn("a();", r.code)
        self.assertIn("b();", r.code)
        # Line structure intact.
        self.assertEqual(r.code.count("\n"), src.count("\n"))
        self.assertEqual(r.comments[0].line, 2)
        self.assertIn("std::thread t;", r.comments[0].text)

    def test_string_literal_blanked(self):
        r = scrub('call("steady_clock::now()");\n')
        self.assertNotIn("steady_clock", r.code)
        self.assertIn("call(", r.code)

    def test_escaped_quote_inside_string(self):
        r = scrub('f("a\\"b rand() c");\ng();\n')
        self.assertNotIn("rand", r.code)
        self.assertIn("g();", r.code)

    def test_char_literal_blanked(self):
        r = scrub("char c = 'x'; int n = f();\n")
        self.assertNotIn("'x'", r.code)
        self.assertIn("int n = f();", r.code)

    def test_escaped_char_literal(self):
        r = scrub("char c = '\\''; g();\n")
        self.assertIn("g();", r.code)

    def test_digit_separator_is_not_a_char_literal(self):
        src = "long n = 1'000'000; rand();\n"
        r = scrub(src)
        # The separator must not open a literal that swallows `rand()`.
        self.assertIn("rand();", r.code)
        self.assertIn("1 000 000", r.code.replace("'", " "))

    def test_hex_digit_separator(self):
        r = scrub("unsigned m = 0xFF'FFu; rand();\n")
        self.assertIn("rand();", r.code)

    def test_raw_string_blanked(self):
        src = 'auto s = R"(std::thread t; " quote)"; f();\n'
        r = scrub(src)
        self.assertNotIn("thread", r.code)
        self.assertIn("f();", r.code)

    def test_raw_string_with_delimiter(self):
        src = 'auto s = R"doc(rand() )" still inside )doc"; g();\n'
        r = scrub(src)
        self.assertNotIn("rand", r.code)
        self.assertNotIn("still inside", r.code)
        self.assertIn("g();", r.code)

    def test_prefixed_raw_string(self):
        r = scrub('auto s = u8R"(rand())"; h();\n')
        self.assertNotIn("rand", r.code)
        self.assertIn("h();", r.code)

    def test_identifier_ending_in_R_is_not_raw_string(self):
        r = scrub('auto s = myR"x";\n')
        # `myR` is an identifier followed by an ordinary string "x".
        self.assertIn("myR", r.code)
        self.assertNotIn('"x"', r.code)

    def test_columns_preserved(self):
        src = 'f("pad"); rand();\n'
        r = scrub(src)
        self.assertEqual(len(r.code), len(src))
        self.assertEqual(r.code.index("rand"), src.index("rand"))

    def test_comment_inside_string_is_not_a_comment(self):
        r = scrub('auto url = "http://example.com"; x();\n')
        self.assertEqual(len(r.comments), 0)
        self.assertIn("x();", r.code)

    def test_block_comment_gutter_stripped(self):
        r = scrub("/*\n * line one\n * line two\n */\n")
        self.assertEqual(r.comments[0].text, "line one\nline two")


if __name__ == "__main__":
    unittest.main()
