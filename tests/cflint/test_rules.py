"""Rule-engine unit tests on in-memory projects: waiver semantics, the
layering table, trust-boundary parsing edge cases, and baseline
fingerprint behaviour."""

import unittest
from pathlib import Path

import support
from support import make_project

from cflint import baseline as baseline_mod
from cflint.model import Finding
from cflint.rules import ALL_RULES, RULE_IDS, rule_by_id
from cflint.rules.layering import LAYERS
from cflint.rules.trust import GUARDED_CLASSES
from cflint.waivers import apply_waivers, collect_waivers


def run_rule(rule_id, files):
    project = make_project(files)
    rule = rule_by_id(rule_id)
    findings = []
    for sf in project.files:
        findings.extend(rule.check_file(sf, project))
    findings.extend(rule.check_project(project))
    return project, findings


class WaiverSemantics(unittest.TestCase):
    def test_trailing_waiver_suppresses_own_line(self):
        project, findings = run_rule(
            "libc-rand",
            {
                "src/util/x.cpp": (
                    "int a() {\n"
                    "  return rand();  // lint:allow(libc-rand) — "
                    "deliberate for the test\n"
                    "}\n"
                )
            },
        )
        kept, waived, _ = apply_waivers(project, findings, RULE_IDS)
        self.assertEqual(kept, [])
        self.assertEqual(len(waived), 1)

    def test_standalone_waiver_suppresses_next_line(self):
        project, findings = run_rule(
            "libc-rand",
            {
                "src/util/x.cpp": (
                    "int a() {\n"
                    "  // deliberate libc use, exercised by this test\n"
                    "  // lint:allow(libc-rand)\n"
                    "  return rand();\n"
                    "}\n"
                )
            },
        )
        kept, waived, _ = apply_waivers(project, findings, RULE_IDS)
        self.assertEqual([f.rule for f in kept], [])
        self.assertEqual(len(waived), 1)

    def test_waiver_does_not_leak_to_other_rules(self):
        project, findings = run_rule(
            "libc-rand",
            {
                "src/util/x.cpp": (
                    "int a() {\n"
                    "  return rand();  // lint:allow(wall-clock) — "
                    "wrong rule named\n"
                    "}\n"
                )
            },
        )
        kept, waived, _ = apply_waivers(project, findings, RULE_IDS)
        # The libc-rand finding survives, and the wall-clock waiver is
        # reported stale.
        self.assertEqual(
            sorted(f.rule for f in kept), ["libc-rand", "stale-waiver"]
        )
        self.assertEqual(waived, [])

    def test_waiver_inside_string_literal_is_inert(self):
        project = make_project(
            {
                "src/util/x.cpp": (
                    'const char* s = "lint:allow(libc-rand)";\n'
                )
            }
        )
        self.assertEqual(collect_waivers(project.files[0]), [])

    def test_multi_rule_waiver(self):
        project, findings = run_rule(
            "libc-rand",
            {
                "src/util/x.cpp": (
                    "int a() {\n"
                    "  return rand();  // lint:allow(libc-rand, "
                    "wall-clock) — both rules excused, one is stale\n"
                    "}\n"
                )
            },
        )
        kept, waived, _ = apply_waivers(project, findings, RULE_IDS)
        self.assertEqual(len(waived), 1)
        self.assertEqual([f.rule for f in kept], ["stale-waiver"])


class LayeringTable(unittest.TestCase):
    def test_every_real_subsystem_is_ranked(self):
        real = {
            p.name
            for p in (support.REPO_ROOT / "src").iterdir()
            if p.is_dir()
        } | {"bench", "tests", "examples"}
        self.assertEqual(real - set(LAYERS), set())

    def test_util_is_the_bottom_and_harnesses_the_top(self):
        self.assertEqual(LAYERS["util"], min(LAYERS.values()))
        top = max(LAYERS.values())
        for harness in ("bench", "tests", "examples"):
            self.assertEqual(LAYERS[harness], top)

    def test_downward_edge_clean_upward_edge_fires(self):
        files = {
            "src/core/a.h": '#include "util/b.h"\n',
            "src/util/b.h": "#pragma once\n",
        }
        _, findings = run_rule("include-layering", files)
        self.assertEqual(findings, [])

        files = {
            "src/util/b.h": '#include "core/a.h"\n',
            "src/core/a.h": "#pragma once\n",
        }
        _, findings = run_rule("include-layering", files)
        self.assertEqual([f.rule for f in findings], ["include-layering"])

    def test_unresolved_include_is_ignored(self):
        _, findings = run_rule(
            "include-layering",
            {"src/util/b.h": '#include "third_party/header.h"\n'},
        )
        self.assertEqual(findings, [])

    def test_self_subsystem_include_is_clean(self):
        _, findings = run_rule(
            "include-layering",
            {
                "src/core/a.h": '#include "core/b.h"\n',
                "src/core/b.h": "#pragma once\n",
            },
        )
        self.assertEqual(findings, [])


class TrustParsing(unittest.TestCase):
    HEADER = "src/sim/simulator.h"

    def test_guarded_class_config_points_at_real_headers(self):
        for cls, header in GUARDED_CLASSES.items():
            path = support.REPO_ROOT / header
            self.assertTrue(path.is_file(), f"{cls}: {header} missing")
            self.assertIn(f"class {cls}", path.read_text())

    def test_private_mutators_are_exempt(self):
        files = {
            self.HEADER: (
                "class Simulator {\n"
                " public:\n"
                "  int peek() const { return v_; }\n"
                " private:\n"
                "  void mutate() { v_ = 1; }\n"
                "  int v_ = 0;\n"
                "};\n"
            )
        }
        _, findings = run_rule("trust-boundary", files)
        self.assertEqual(findings, [])

    def test_deleted_and_defaulted_are_exempt(self):
        files = {
            self.HEADER: (
                "class Simulator {\n"
                " public:\n"
                "  Simulator() = default;\n"
                "  Simulator(const Simulator&) = delete;\n"
                "  Simulator& operator=(const Simulator&) = delete;\n"
                "};\n"
            )
        }
        _, findings = run_rule("trust-boundary", files)
        self.assertEqual(findings, [])

    def test_inline_unchecked_mutator_fires(self):
        files = {
            self.HEADER: (
                "class Simulator {\n"
                " public:\n"
                "  void poke(int v) { v_ = v; }\n"
                " private:\n"
                "  int v_ = 0;\n"
                "};\n"
            )
        }
        _, findings = run_rule("trust-boundary", files)
        self.assertEqual(len(findings), 1)
        self.assertIn("Simulator::poke", findings[0].message)
        self.assertEqual(findings[0].line, 3)

    def test_checked_out_of_line_body_is_clean(self):
        files = {
            self.HEADER: (
                "class Simulator {\n"
                " public:\n"
                "  void poke(int v);\n"
                "};\n"
            ),
            "src/sim/simulator.cpp": (
                '#include "sim/simulator.h"\n'
                "void Simulator::poke(int v) {\n"
                "  CF_CHECK_GE(v, 0);\n"
                "}\n"
            ),
        }
        _, findings = run_rule("trust-boundary", files)
        self.assertEqual(findings, [])

    def test_cf_dcheck_does_not_count(self):
        # CF_DCHECK compiles out under NDEBUG; the boundary must hold in
        # release builds too.
        files = {
            self.HEADER: (
                "class Simulator {\n"
                " public:\n"
                "  void poke(int v) { CF_DCHECK(v >= 0); v_ = v; }\n"
                " private:\n"
                "  int v_ = 0;\n"
                "};\n"
            )
        }
        _, findings = run_rule("trust-boundary", files)
        self.assertEqual(len(findings), 1)

    def test_renamed_class_fails_loudly(self):
        files = {self.HEADER: "class Simulator2 {\n public:\n};\n"}
        _, findings = run_rule("trust-boundary", files)
        self.assertEqual(len(findings), 1)
        self.assertIn("not found", findings[0].message)

    def test_nested_struct_members_are_not_audited(self):
        files = {
            self.HEADER: (
                "class Simulator {\n"
                " public:\n"
                "  struct Slot {\n"
                "    void reset() { used = false; }\n"
                "    bool used = false;\n"
                "  };\n"
                "};\n"
            )
        }
        _, findings = run_rule("trust-boundary", files)
        self.assertEqual(findings, [])


class BaselineFingerprints(unittest.TestCase):
    def test_fingerprint_survives_line_drift(self):
        before = make_project(
            {"src/util/x.cpp": "int a;\nint bad_line;\n"}
        )
        after = make_project(
            {"src/util/x.cpp": "// new comment shifting lines\nint a;\nint bad_line;\n"}
        )
        f_before = Finding("libc-rand", "src/util/x.cpp", 2, 1, "m")
        f_after = Finding("libc-rand", "src/util/x.cpp", 3, 1, "m")
        self.assertEqual(
            baseline_mod.fingerprint(f_before, before),
            baseline_mod.fingerprint(f_after, after),
        )

    def test_fingerprint_changes_when_line_is_edited(self):
        p1 = make_project({"src/util/x.cpp": "int bad_line;\n"})
        p2 = make_project({"src/util/x.cpp": "int bad_line_edited;\n"})
        f = Finding("libc-rand", "src/util/x.cpp", 1, 1, "m")
        self.assertNotEqual(
            baseline_mod.fingerprint(f, p1), baseline_mod.fingerprint(f, p2)
        )


class Registry(unittest.TestCase):
    def test_rule_ids_unique_and_kebab_case(self):
        self.assertEqual(len(set(RULE_IDS)), len(RULE_IDS))
        for rid in RULE_IDS:
            self.assertRegex(rid, r"^[a-z][a-z-]*[a-z]$")

    def test_every_rule_has_a_description(self):
        for rule in ALL_RULES:
            self.assertTrue(rule.description, f"{rule.id} lacks description")


if __name__ == "__main__":
    unittest.main()
