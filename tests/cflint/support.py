"""Shared plumbing for the cflint self-tests: sys.path bootstrap (cflint
lives under scripts/, which is not a normal site dir) and tiny helpers for
building in-memory projects and running the engine over fixtures."""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, List, Sequence

TESTS_DIR = Path(__file__).resolve().parent
REPO_ROOT = TESTS_DIR.parent.parent
FIXTURES = TESTS_DIR / "fixtures"

sys.path.insert(0, str(REPO_ROOT / "scripts"))

from cflint.engine import Report, analyze  # noqa: E402
from cflint.model import Project, SourceFile  # noqa: E402


def make_project(files: Dict[str, str], root: Path = REPO_ROOT) -> Project:
    """Project from {rel_path: source_text} without touching disk."""
    sources = [
        SourceFile(root / rel, rel, text) for rel, text in files.items()
    ]
    return Project(root, sources)


def analyze_fixture(entry: Path) -> Report:
    """Run the full engine over one fixture entry (no baseline).

    A file entry is scanned alone (root = its directory). A directory
    entry is a mini source tree (root = the entry, scan everything in it).
    """
    if entry.is_dir():
        roots = sorted(p.relative_to(entry) for p in entry.iterdir())
        return analyze(entry, roots, exclude_fixtures=False)
    return analyze(
        entry.parent, [Path(entry.name)], exclude_fixtures=False
    )


def finding_rules(report: Report) -> List[str]:
    return sorted({f.rule for f in report.findings})
