"""Fixture-corpus driver: every rule must have at least one failing and
one passing exemplar, every fail_* fixture must produce exactly its rule,
and every pass_* fixture must be completely clean. This is the test that
makes "add a rule" mean "add fixtures too"."""

import unittest
from pathlib import Path

import support
from support import FIXTURES, analyze_fixture, finding_rules

from cflint.rules import RULE_IDS


def fixture_entries(rule_id: str, prefix: str):
    rule_dir = FIXTURES / rule_id
    if not rule_dir.is_dir():
        return []
    return sorted(p for p in rule_dir.iterdir() if p.name.startswith(prefix))


class CorpusCompleteness(unittest.TestCase):
    def test_every_rule_has_fail_and_pass_fixtures(self):
        for rule_id in RULE_IDS:
            with self.subTest(rule=rule_id):
                self.assertTrue(
                    fixture_entries(rule_id, "fail"),
                    f"rule '{rule_id}' has no fail_* fixture under "
                    f"tests/cflint/fixtures/{rule_id}/",
                )
                self.assertTrue(
                    fixture_entries(rule_id, "pass"),
                    f"rule '{rule_id}' has no pass_* fixture under "
                    f"tests/cflint/fixtures/{rule_id}/",
                )

    def test_no_orphan_fixture_directories(self):
        known = set(RULE_IDS)
        for d in FIXTURES.iterdir():
            with self.subTest(dir=d.name):
                self.assertIn(
                    d.name,
                    known,
                    f"fixture dir '{d.name}' matches no registered rule",
                )


class FailFixturesFire(unittest.TestCase):
    def test_fail_fixtures_produce_exactly_their_rule(self):
        for rule_id in RULE_IDS:
            for entry in fixture_entries(rule_id, "fail"):
                with self.subTest(rule=rule_id, fixture=entry.name):
                    report = analyze_fixture(entry)
                    rules = finding_rules(report)
                    self.assertIn(
                        rule_id,
                        rules,
                        f"{entry} produced no '{rule_id}' finding "
                        f"(got: {rules or 'nothing'})",
                    )
                    self.assertEqual(
                        rules,
                        [rule_id],
                        f"{entry} cross-fired other rules: {rules}",
                    )


class PassFixturesClean(unittest.TestCase):
    def test_pass_fixtures_are_completely_clean(self):
        for rule_id in RULE_IDS:
            for entry in fixture_entries(rule_id, "pass"):
                with self.subTest(rule=rule_id, fixture=entry.name):
                    report = analyze_fixture(entry)
                    self.assertEqual(
                        report.findings,
                        [],
                        f"{entry} should be clean, got: "
                        + "; ".join(f.render() for f in report.findings),
                    )


class AcceptanceScenarios(unittest.TestCase):
    def test_deliberate_upward_include_is_detected(self):
        entry = FIXTURES / "include-layering" / "fail_upward_tree"
        report = analyze_fixture(entry)
        [finding] = [
            f for f in report.findings if f.rule == "include-layering"
        ]
        self.assertIn("upward include", finding.message)
        self.assertIn("util", finding.message)
        self.assertIn("core", finding.message)
        self.assertEqual(finding.rel, "src/util/strings.h")

    def test_cycle_names_the_full_path(self):
        entry = FIXTURES / "include-cycle" / "fail_cycle_tree"
        report = analyze_fixture(entry)
        [finding] = [f for f in report.findings if f.rule == "include-cycle"]
        self.assertIn("src/util/alpha.h", finding.message)
        self.assertIn("src/util/beta.h", finding.message)

    def test_trust_finding_names_class_and_method(self):
        entry = FIXTURES / "trust-boundary" / "fail_tree"
        report = analyze_fixture(entry)
        [finding] = [
            f for f in report.findings if f.rule == "trust-boundary"
        ]
        self.assertIn("Simulator::poke", finding.message)
        self.assertEqual(finding.rel, "src/sim/simulator.h")


if __name__ == "__main__":
    unittest.main()
