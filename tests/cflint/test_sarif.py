"""End-to-end tests: SARIF structural validation (hand-rolled — no
jsonschema in the container), CLI exit codes via subprocess, SARIF file
writing, and the baseline grandfathering round-trip."""

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

import support
from support import FIXTURES, REPO_ROOT, analyze_fixture

from cflint import baseline as baseline_mod, sarif
from cflint.engine import META_RULE_DESCRIPTIONS
from cflint.rules import ALL_RULES, RULE_IDS

CLI = REPO_ROOT / "scripts" / "cflint"
FAIL_FIXTURE = FIXTURES / "libc-rand" / "fail_rand_call.cpp"
PASS_FIXTURE = FIXTURES / "libc-rand" / "pass_lookalikes.cpp"


def render_fail_fixture():
    report = analyze_fixture(FAIL_FIXTURE)
    text = sarif.render(
        report.findings, ALL_RULES, META_RULE_DESCRIPTIONS, report.project
    )
    return report, json.loads(text)


def run_cli(*argv, cwd=REPO_ROOT):
    return subprocess.run(
        [sys.executable, str(CLI), *map(str, argv)],
        cwd=cwd,
        capture_output=True,
        text=True,
    )


class SarifStructure(unittest.TestCase):
    """Assert the SARIF 2.1.0 fields GitHub code scanning requires."""

    @classmethod
    def setUpClass(cls):
        cls.report, cls.doc = render_fail_fixture()

    def test_top_level_envelope(self):
        self.assertEqual(self.doc["version"], "2.1.0")
        self.assertIn("sarif-schema-2.1.0", self.doc["$schema"])
        self.assertEqual(len(self.doc["runs"]), 1)

    def test_driver_carries_the_full_rule_table(self):
        driver = self.doc["runs"][0]["tool"]["driver"]
        self.assertEqual(driver["name"], "cflint")
        self.assertTrue(driver["version"])
        ids = [r["id"] for r in driver["rules"]]
        self.assertEqual(sorted(ids), sorted(RULE_IDS))
        for rule in driver["rules"]:
            self.assertTrue(rule["shortDescription"]["text"])
            self.assertTrue(rule["fullDescription"]["text"])
            self.assertEqual(
                rule["defaultConfiguration"]["level"], "error"
            )

    def test_results_reference_rules_by_index(self):
        run = self.doc["runs"][0]
        ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        self.assertTrue(run["results"])
        for result in run["results"]:
            self.assertEqual(ids[result["ruleIndex"]], result["ruleId"])
            self.assertTrue(result["message"]["text"])

    def test_physical_locations_are_one_based(self):
        for result in self.doc["runs"][0]["results"]:
            loc = result["locations"][0]["physicalLocation"]
            self.assertEqual(
                loc["artifactLocation"]["uriBaseId"], "SRCROOT"
            )
            self.assertNotIn("\\", loc["artifactLocation"]["uri"])
            self.assertGreaterEqual(loc["region"]["startLine"], 1)
            self.assertGreaterEqual(loc["region"]["startColumn"], 1)

    def test_partial_fingerprints_match_the_baseline_scheme(self):
        for result in self.doc["runs"][0]["results"]:
            fp = result["partialFingerprints"]["cflint/v1"]
            self.assertRegex(fp, r"^[0-9a-f]{24}$")

    def test_srcroot_base_is_a_directory_uri(self):
        bases = self.doc["runs"][0]["originalUriBaseIds"]
        self.assertTrue(bases["SRCROOT"]["uri"].startswith("file://"))
        self.assertTrue(bases["SRCROOT"]["uri"].endswith("/"))

    def test_empty_findings_still_emit_valid_run(self):
        report = analyze_fixture(PASS_FIXTURE)
        doc = json.loads(
            sarif.render(
                [], ALL_RULES, META_RULE_DESCRIPTIONS, report.project
            )
        )
        self.assertEqual(doc["runs"][0]["results"], [])
        self.assertTrue(doc["runs"][0]["tool"]["driver"]["rules"])


class CliContract(unittest.TestCase):
    def test_fail_fixture_exits_1_and_names_the_rule(self):
        proc = run_cli(
            FAIL_FIXTURE.relative_to(REPO_ROOT), "--include-fixtures"
        )
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("libc-rand", proc.stdout)

    def test_pass_fixture_exits_0(self):
        proc = run_cli(
            PASS_FIXTURE.relative_to(REPO_ROOT), "--include-fixtures"
        )
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("clean", proc.stdout)

    def test_fixture_corpus_is_excluded_by_default(self):
        # Without --include-fixtures the deliberately-failing corpus under
        # tests/cflint/fixtures must not poison a scan of tests/.
        proc = run_cli("tests")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_sarif_flag_writes_a_parseable_report(self):
        with tempfile.TemporaryDirectory() as td:
            out = Path(td) / "out.sarif"
            proc = run_cli(
                FAIL_FIXTURE.relative_to(REPO_ROOT),
                "--include-fixtures",
                "--sarif",
                out,
            )
            self.assertEqual(proc.returncode, 1)
            doc = json.loads(out.read_text())
            self.assertEqual(doc["version"], "2.1.0")
            self.assertTrue(doc["runs"][0]["results"])

    def test_list_rules_covers_every_rule(self):
        proc = run_cli("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for rid in RULE_IDS:
            self.assertIn(rid, proc.stdout)

    def test_module_invocation_works(self):
        # `python3 -m cflint` from scripts/ must behave identically to
        # `python3 scripts/cflint`.
        proc = subprocess.run(
            [sys.executable, "-m", "cflint", "--version"],
            cwd=REPO_ROOT / "scripts",
            capture_output=True,
            text=True,
        )
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("cflint", proc.stdout)


class BaselineRoundTrip(unittest.TestCase):
    def test_committed_baseline_is_empty(self):
        data = json.loads(
            (REPO_ROOT / "scripts" / "cflint" / "baseline.json").read_text()
        )
        self.assertEqual(data["findings"], [])

    def test_write_baseline_grandfathers_and_edit_unbaselines(self):
        with tempfile.TemporaryDirectory() as td:
            bl = Path(td) / "baseline.json"
            rel = FAIL_FIXTURE.relative_to(REPO_ROOT)

            proc = run_cli(
                rel, "--include-fixtures", "--baseline", bl,
                "--write-baseline",
            )
            self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

            # Grandfathered: same scan is now clean.
            proc = run_cli(rel, "--include-fixtures", "--baseline", bl)
            self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
            self.assertIn("baselined", proc.stdout)

            # --no-baseline still reports it.
            proc = run_cli(
                rel, "--include-fixtures", "--baseline", bl, "--no-baseline"
            )
            self.assertEqual(proc.returncode, 1)

            # An edited finding line no longer matches its fingerprint.
            entries = json.loads(bl.read_text())["findings"]
            self.assertTrue(entries)
            for e in entries:
                e["fingerprint"] = "0" * 24
            bl.write_text(
                json.dumps({"version": 1, "findings": entries})
            )
            proc = run_cli(rel, "--include-fixtures", "--baseline", bl)
            self.assertEqual(proc.returncode, 1)

    def test_malformed_baseline_exits_2(self):
        with tempfile.TemporaryDirectory() as td:
            bl = Path(td) / "baseline.json"
            bl.write_text('{"version": 99, "findings": []}')
            proc = run_cli(
                FAIL_FIXTURE.relative_to(REPO_ROOT),
                "--include-fixtures",
                "--baseline",
                bl,
            )
            self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)

    def test_save_load_round_trip(self):
        report = analyze_fixture(FAIL_FIXTURE)
        with tempfile.TemporaryDirectory() as td:
            bl = Path(td) / "baseline.json"
            baseline_mod.save(bl, report.findings, report.project)
            loaded = baseline_mod.load(bl)
            for f in report.findings:
                self.assertIn(
                    baseline_mod.fingerprint(f, report.project), loaded
                )


if __name__ == "__main__":
    unittest.main()
