// Fixture: libc rand()/srand() have global, implementation-defined state.
#include <cstdlib>

int roll_die() {
  srand(42);
  return rand() % 6;
}
