// Fixture: identifiers merely containing "rand" and documentation mentions
// must not fire.
int util_rand(int seed);   // prefixed identifier, not ::rand
int randomize_count = 0;   // "random" without a call

int roll_die(int seed) {
  // rand() is banned; srand(42) too — these words live in a comment.
  return util_rand(seed) % 6;
}
