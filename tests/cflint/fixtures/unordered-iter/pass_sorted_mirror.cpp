// Fixture: iterating an insertion-order mirror is the sanctioned pattern
// (see SupernodeManager::roster_); mentioning unordered_map here in a
// comment — for (auto& kv : unordered_scores_) — must not fire.
#include <unordered_map>
#include <vector>

struct Roster {
  std::unordered_map<int, double> unordered_scores_;
  std::vector<int> insertion_order_;
  double sum() const {
    double total = 0.0;
    for (int id : insertion_order_) {
      total += unordered_scores_.at(id);
    }
    return total;
  }
};
