// Fixture: range-for over an unordered container member — bucket order is
// libstdc++-version- and ASLR-dependent.
#include <string>
#include <unordered_map>

struct Roster {
  std::unordered_map<int, double> unordered_scores_;
  double sum() const {
    double total = 0.0;
    for (const auto& kv : unordered_scores_) {
      total += kv.second;
    }
    return total;
  }
};
