// Fixture: floating-point accumulate over an unordered range — FP addition
// is non-associative, so the reduction order must be pinned first.
#include <numeric>
#include <unordered_set>

double total(const std::unordered_set<double>& unordered_vals) {
  return std::accumulate(unordered_vals.begin(), unordered_vals.end(), 0.0);
}
