// Fixture: accumulating a vector is order-pinned and fine; the phrase
// "std::accumulate over unordered_set with 0.0" in text must not fire.
#include <numeric>
#include <vector>

double total(const std::vector<double>& ordered_vals) {
  return std::accumulate(ordered_vals.begin(), ordered_vals.end(), 0.0);
}
