// Fixture: seeding from config is the sanctioned path; the rule name in
// this comment (std::random_device) must not fire.
#include <random>

std::mt19937 engine_from_config(unsigned seed) { return std::mt19937(seed); }
