// Fixture: std::random_device is nondeterministic by design.
#include <random>

unsigned fresh_seed() {
  std::random_device rd;
  return rd();
}
