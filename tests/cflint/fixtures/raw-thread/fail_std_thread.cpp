// Fixture: ad-hoc threading outside src/exec breaks the bit-identical
// results contract.
#include <thread>

void fan_out(void (*work)()) {
  std::thread t(work);
  t.join();
}
