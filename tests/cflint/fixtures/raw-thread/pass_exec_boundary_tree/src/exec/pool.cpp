// Fixture: src/exec is the sanctioned thread boundary — RunExecutor owns
// every worker thread in the repo, so std::thread is exempt here by path.
#include <thread>
#include <vector>

void spawn_pool(std::vector<std::thread>& pool, void (*work)()) {
  pool.emplace_back(work);
}
