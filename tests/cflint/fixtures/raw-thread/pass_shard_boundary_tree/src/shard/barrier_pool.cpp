// Fixture: src/shard is the second designated thread boundary (the
// window-barrier worker pool), so raw std::thread here is allowed.
#include <thread>
#include <vector>

namespace cloudfog::shard {

void spin_workers(std::size_t n) {
  std::vector<std::thread> workers;
  for (std::size_t i = 0; i < n; ++i) {
    workers.emplace_back([] {});
  }
  for (auto& w : workers) w.join();
}

}  // namespace cloudfog::shard
