// Fixture: std::thread::id is allowed — naming the current thread is not
// creating one — and "std::thread worker;" in a comment must not fire.
#include <thread>

bool on_thread(std::thread::id expected) {
  return std::this_thread::get_id() == expected;
}
