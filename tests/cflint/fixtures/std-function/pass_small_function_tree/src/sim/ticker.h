// Fixture: the sanctioned hot-path callable — util::small_function with an
// explicit inline capacity. A comment naming std::function must not fire.
#pragma once

#include "util/small_function.h"

namespace cloudfog::sim {

class Ticker {
 public:
  using Callback = util::small_function<void(), 64>;

 private:
  Callback on_tick_;
};

}  // namespace cloudfog::sim
