// Fixture: std::function outside the hot-path subsystems (src/systems
// executor fan-out plumbing) is out of scope by design.
#pragma once

#include <functional>
#include <utility>
#include <vector>

namespace cloudfog::systems {

struct Fanout {
  std::vector<std::pair<int, std::function<int()>>> tasks;
};

}  // namespace cloudfog::systems
