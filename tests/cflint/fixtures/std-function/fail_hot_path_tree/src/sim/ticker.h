// Fixture: std::function inside src/sim, the packet hot path.
#pragma once

#include <functional>

namespace cloudfog::sim {

class Ticker {
 public:
  using Callback = std::function<void()>;

 private:
  Callback on_tick_;
};

}  // namespace cloudfog::sim
