// Fixture: an explicit seed expression is fine (engine choice still
// belongs in util::Rng, but that is a review matter, not this rule's).
#include <random>

double sample(unsigned seed) {
  std::mt19937 gen(seed);
  return std::uniform_real_distribution<double>(0.0, 1.0)(gen);
}
