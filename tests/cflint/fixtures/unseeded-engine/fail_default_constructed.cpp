// Fixture: a default-constructed std engine hides the seeding decision.
#include <random>

double sample() {
  std::mt19937 gen;
  return std::uniform_real_distribution<double>(0.0, 1.0)(gen);
}
