// Fixture: shard (rank 55) includes core (rank 50) — strictly downward,
// legal. Together with systems/runner.h this pins the shard sandwich:
// core < shard < systems.
#pragma once

#include "core/grid.h"

inline int shard_sites() { return grid_cells(); }
