#pragma once

inline int grid_cells() { return 64; }
