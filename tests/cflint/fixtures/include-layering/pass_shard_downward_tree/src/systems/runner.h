// Fixture: systems (rank 60) composes shard (rank 55) — strictly
// downward, legal.
#pragma once

#include "shard/partition.h"

inline int runner_sites() { return shard_sites(); }
