// Fixture: net and metrics share rank 30 — peers must not couple, even
// though neither is "above" the other.
#pragma once

#include "metrics/score.h"

inline double channel_score() { return score_unit(); }
