#pragma once

inline double score_unit() { return 1.0; }
