// Fixture: the acceptance-criteria upward edge — util (rank 0) reaching up
// into core (rank 50). The layering rule must flag this include.
#pragma once

#include "core/engine.h"

inline const char* describe() { return core_engine_name(); }
