#pragma once

inline const char* core_engine_name() { return "engine"; }
