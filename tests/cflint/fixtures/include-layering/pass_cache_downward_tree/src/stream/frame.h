#pragma once

inline double frame_kbit() { return 80.0; }
