// Fixture: the legal chain around the cache rank — core (50) includes
// cache (45), which includes stream (40). Every edge points strictly down
// the DAG, so the layering rule must stay silent on this tree.
#pragma once

#include "cache/store.h"

inline double relay_budget() { return store_capacity_kbit(); }
