// cache (rank 45) including stream (rank 40) is a downward edge — the
// cache holds stream segments, never the other way around.
#pragma once

#include "stream/frame.h"

inline double store_capacity_kbit() { return frame_kbit() * 50.0; }
