// Fixture: stream (rank 40) reaching up into cache (rank 45). The cache
// subsystem sits *above* stream — it caches stream segments — so this edge
// inverts the DAG and the layering rule must flag it.
#pragma once

#include "cache/store.h"

inline double feed_capacity() { return store_capacity_kbit(); }
