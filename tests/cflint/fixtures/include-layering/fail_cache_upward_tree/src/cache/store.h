#pragma once

inline double store_capacity_kbit() { return 4000.0; }
