#pragma once

inline const char* describe() { return "cloudfog"; }
