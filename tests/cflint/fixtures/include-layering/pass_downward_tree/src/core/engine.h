// Fixture: core (rank 50) including util (rank 0) points strictly down the
// DAG — legal. The string "#include \"systems/driver.h\"" and the comment
// #include "bench/bench_common.h" must not create edges.
#pragma once

#include "util/strings.h"

inline const char* engine_banner() { return describe(); }

inline const char* fake_edge_in_string() {
  return "#include \"systems/driver.h\"";
}
