#pragma once

inline int shard_count() { return 4; }
