// Fixture: core (rank 50) reaching up into shard (rank 55). The shard
// subsystem composes core's spatial index, not the other way around, so
// this edge inverts the DAG and the layering rule must flag it.
#pragma once

#include "shard/partition.h"

inline int engine_shards() { return shard_count(); }
