// Fixture: the waiver below excused a rand() call that was later removed;
// the waiver outlived the finding and must now fail as stale.
#include <cstdlib>

int roll_die(int seed) {
  // The PRNG moved to util::Rng long ago, so nothing here trips libc-rand.
  return seed % 6;  // lint:allow(libc-rand) — historical waiver, now dead
}
