// Fixture: a waiver naming a rule that does not exist (typo'd rule ids
// would otherwise silently waive nothing forever).
int answer() {
  return 42;  // lint:allow(wall-clocks) — typo: the rule is wall-clock
}
