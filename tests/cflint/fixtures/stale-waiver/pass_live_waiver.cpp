// Fixture: a live, justified waiver — it suppresses a real finding on its
// own line, so the stale-waiver rule stays quiet.
#include <cstdlib>

int roll_die() {
  // This fixture deliberately exercises libc rand() to prove live waivers
  // keep working; nothing downstream consumes the value.
  return rand() % 6;  // lint:allow(libc-rand) — deliberate libc use under test
}
