#pragma once

#include "util/alpha.h"

inline int beta() { return 2; }
