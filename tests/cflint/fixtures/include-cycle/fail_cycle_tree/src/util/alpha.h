// Fixture: a file-level include cycle entirely inside one subsystem — the
// layering DAG cannot see it, include-cycle must.
#pragma once

#include "util/beta.h"

inline int alpha() { return 1; }
