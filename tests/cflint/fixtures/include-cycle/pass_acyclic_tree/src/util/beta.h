#pragma once

inline int beta() { return 2; }
