// Fixture: a one-way include chain is acyclic and clean.
#pragma once

#include "util/beta.h"

inline int alpha() { return beta() + 1; }
