// Fixture: reading the host monotonic clock in simulation code must fire
// the wall-clock rule.
#include <chrono>

double sample_latency_ms() {
  const auto t0 = std::chrono::steady_clock::now();
  return static_cast<double>(t0.time_since_epoch().count());
}
