// Fixture: src/obs is the sanctioned wall-clock boundary — the same code
// that fails anywhere else is exempt here by path, with no waiver needed.
#include <chrono>

double wall_now_ms() {
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t.time_since_epoch())
      .count();
}
