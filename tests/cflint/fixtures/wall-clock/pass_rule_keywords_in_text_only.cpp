// Fixture (false-positive regression): every determinism-rule keyword below
// appears only in comments, string literals, char-adjacent text, or raw
// strings. The retired regex lint needed per-line comment heuristics to not
// fire here; the token-aware lexer must produce zero findings.
//
// In documentation: std::chrono::steady_clock::now(), system_clock,
// high_resolution_clock, std::time(nullptr), rand(), srand(), random(),
// std::random_device, std::mt19937 gen; — all banned, all inert here.

/* Block comments too: std::thread worker; std::async(std::launch::async);
   for (const auto& kv : unordered_members_) {}   */

#include <string>

const char* kHelpText =
    "never call rand() or std::time(nullptr); steady_clock::now() reads "
    "the host clock and std::random_device is nondeterministic";

const std::string kRawDoc = R"doc(
  std::thread t([] {});            // raw string, not code
  std::mt19937 engine;             // still not code
  auto x = std::accumulate(unordered_vals.begin(), unordered_vals.end(), 0.0);
)doc";

// Digit separators must not open a char literal and swallow real code:
const long kPlayers = 1'000'000;
const unsigned kMask = 0xFF'FFu;

double simulated_now_ms(double sim_clock_ms) { return sim_clock_ms; }
