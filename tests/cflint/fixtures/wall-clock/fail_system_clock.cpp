// Fixture: std::chrono::system_clock anywhere in a type or expression is a
// wall-clock read waiting to happen.
#include <chrono>

using Stamp = std::chrono::system_clock::time_point;

Stamp stamp_now();
