#include <cstdlib>

int roll_die() {
  return rand() % 6;  // lint:allow(libc-rand)
}
