// Fixture: both justification placements — trailing text on the waiver
// line, and a standalone waiver whose reason sits in the comment above.
#include <cstdlib>

int roll_trailing() {
  return rand() % 6;  // lint:allow(libc-rand) — deliberate libc use under test
}

int roll_standalone() {
  // Deliberate libc use: this fixture proves the standalone-comment form
  // waives the line below it.
  // lint:allow(libc-rand)
  return rand() % 6;
}
