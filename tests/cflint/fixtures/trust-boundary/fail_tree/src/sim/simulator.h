// Fixture: a guarded class grows a public mutating method whose body never
// validates anything — the new-entry-point case the audit exists for.
#pragma once

namespace cloudfog::sim {

class Simulator {
 public:
  Simulator() = default;

  /// New entry point with no CF_CHECK anywhere in its body: must fire.
  void poke(int strength);

  /// Const methods are exempt: they cannot mutate the trust boundary.
  int armed() const { return armed_; }

 private:
  int armed_ = 0;
};

}  // namespace cloudfog::sim
