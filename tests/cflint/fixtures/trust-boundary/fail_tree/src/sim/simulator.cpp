#include "sim/simulator.h"

namespace cloudfog::sim {

void Simulator::poke(int strength) {
  // No validation at all: a negative strength corrupts state silently.
  armed_ += strength;
}

}  // namespace cloudfog::sim
