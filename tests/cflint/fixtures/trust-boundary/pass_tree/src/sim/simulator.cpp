#include "sim/simulator.h"

namespace cloudfog::sim {

void Simulator::poke(int strength) {
  CF_CHECK_GE(strength, 0);
  armed_ += strength;
}

}  // namespace cloudfog::sim
