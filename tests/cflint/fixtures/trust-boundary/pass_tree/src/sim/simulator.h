// Fixture: the same shape as fail_tree, but every public mutating method
// validates its inputs — clean.
#pragma once

namespace cloudfog::sim {

class Simulator {
 public:
  Simulator() = default;

  /// Out-of-line body carries a CF_CHECK: clean.
  void poke(int strength);

  /// Inline body carries a CF_INVARIANT: clean.
  void disarm() {
    armed_ = 0;
    CF_INVARIANT(armed_ == 0, "disarm must zero the armed count");
  }

  int armed() const { return armed_; }

 private:
  int armed_ = 0;
};

}  // namespace cloudfog::sim
