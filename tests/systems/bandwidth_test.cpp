#include "systems/bandwidth.h"

#include <gtest/gtest.h>

namespace cloudfog::systems {
namespace {

Scenario scenario() {
  // Paper proportions scaled to a 1,500-player world: 45 edge servers and
  // 600 supernodes per 10,000 players become 7 and 90.
  ScenarioParams p = ScenarioParams::simulation_defaults(1);
  p.num_players = 1'500;
  p.num_edge_servers = 7;
  p.num_supernodes = 90;
  return Scenario::build(p);
}

TEST(Bandwidth, PaperFigure7Ordering) {
  // Cloud > EdgeCloud > CloudFog/B at every population size.
  Scenario s = scenario();
  for (std::size_t n : {400u, 800u, 1'500u}) {
    const auto cloud = measure_bandwidth(SystemKind::kCloud, s, n);
    const auto edge = measure_bandwidth(SystemKind::kEdgeCloud, s, n);
    const auto fog = measure_bandwidth(SystemKind::kCloudFogB, s, n);
    EXPECT_GT(cloud.cloud_mbps, edge.cloud_mbps) << "n=" << n;
    EXPECT_GT(edge.cloud_mbps, fog.cloud_mbps) << "n=" << n;
  }
}

TEST(Bandwidth, CloudGrowsLinearlyWithPlayers) {
  Scenario s = scenario();
  const auto small = measure_bandwidth(SystemKind::kCloud, s, 500);
  const auto large = measure_bandwidth(SystemKind::kCloud, s, 1'000);
  EXPECT_NEAR(large.cloud_mbps / small.cloud_mbps, 2.0, 0.2);
}

TEST(Bandwidth, CloudFogGrowsSlowerThanCloud) {
  // The paper: CloudFog's increase rate with N is the smallest.
  Scenario s = scenario();
  const auto fog_small = measure_bandwidth(SystemKind::kCloudFogB, s, 500);
  const auto fog_large = measure_bandwidth(SystemKind::kCloudFogB, s, 1'000);
  const auto cloud_small = measure_bandwidth(SystemKind::kCloud, s, 500);
  const auto cloud_large = measure_bandwidth(SystemKind::kCloud, s, 1'000);
  EXPECT_LT(fog_large.cloud_mbps - fog_small.cloud_mbps,
            cloud_large.cloud_mbps - cloud_small.cloud_mbps);
}

TEST(Bandwidth, CloudHasNoOffload) {
  Scenario s = scenario();
  const auto r = measure_bandwidth(SystemKind::kCloud, s, 600);
  EXPECT_EQ(r.cloud_supported, 600u);
  EXPECT_EQ(r.edge_supported, 0u);
  EXPECT_EQ(r.supernode_supported, 0u);
  EXPECT_DOUBLE_EQ(r.update_feed_mbps, 0.0);
  EXPECT_NEAR(r.reduction_vs_cloud_mbps, 0.0, 1e-9);
}

TEST(Bandwidth, CloudFogAccountsUpdateFeeds) {
  Scenario s = scenario();
  const auto r = measure_bandwidth(SystemKind::kCloudFogB, s, 600);
  EXPECT_GT(r.supernode_supported, 0u);
  EXPECT_GT(r.active_supernodes, 0u);
  // Lambda * m, converted to Mbps.
  EXPECT_NEAR(r.update_feed_mbps,
              s.params().update_stream_kbps *
                  static_cast<double>(r.active_supernodes) / 1'000.0,
              1e-9);
}

TEST(Bandwidth, Equation2ReductionConsistency) {
  // reduction = all-cloud total - cloudfog total (both in Mbps).
  Scenario s = scenario();
  const auto cloud = measure_bandwidth(SystemKind::kCloud, s, 800);
  const auto fog = measure_bandwidth(SystemKind::kCloudFogB, s, 800);
  EXPECT_NEAR(fog.reduction_vs_cloud_mbps, cloud.cloud_mbps - fog.cloud_mbps,
              1e-6);
  EXPECT_GT(fog.reduction_vs_cloud_mbps, 0.0);
}

TEST(Bandwidth, CloudFogVariantsConsumeIdentically) {
  // Paper: "CloudFog/A does not influence the bandwidth consumption".
  Scenario s = scenario();
  const auto b = measure_bandwidth(SystemKind::kCloudFogB, s, 700);
  const auto a = measure_bandwidth(SystemKind::kCloudFogA, s, 700);
  EXPECT_DOUBLE_EQ(a.cloud_mbps, b.cloud_mbps);
}

TEST(Bandwidth, DeterministicPerScenario) {
  Scenario s = scenario();
  const auto r1 = measure_bandwidth(SystemKind::kCloudFogB, s, 800);
  const auto r2 = measure_bandwidth(SystemKind::kCloudFogB, s, 800);
  EXPECT_DOUBLE_EQ(r1.cloud_mbps, r2.cloud_mbps);
  EXPECT_EQ(r1.supernode_supported, r2.supernode_supported);
}

TEST(Bandwidth, RejectsBadPlayerCounts) {
  Scenario s = scenario();
  EXPECT_THROW(measure_bandwidth(SystemKind::kCloud, s, 0), std::logic_error);
  EXPECT_THROW(measure_bandwidth(SystemKind::kCloud, s, 5'000), std::logic_error);
}

}  // namespace
}  // namespace cloudfog::systems
