#include "systems/scenario.h"

#include <gtest/gtest.h>

#include <set>

namespace cloudfog::systems {
namespace {

ScenarioParams small_params(std::uint64_t seed = 1) {
  ScenarioParams p = ScenarioParams::simulation_defaults(seed);
  p.num_players = 800;
  p.num_datacenters = 5;
  p.num_edge_servers = 6;
  p.num_supernodes = 50;
  return p;
}

TEST(Scenario, BuildCountsMatch) {
  Scenario s = Scenario::build(small_params());
  EXPECT_EQ(s.population().size(), 800u);
  EXPECT_EQ(s.datacenters().size(), 5u);
  EXPECT_EQ(s.edge_servers().size(), 6u);
  EXPECT_EQ(s.player_games().size(), 800u);
}

TEST(Scenario, SupernodesAreCapablePlayers) {
  Scenario s = Scenario::build(small_params());
  EXPECT_LE(s.supernode_players().size(), 50u);
  EXPECT_GT(s.supernode_players().size(), 10u);  // ~10% of 800 capable
  for (std::size_t sn : s.supernode_players()) {
    EXPECT_TRUE(s.population().player(sn).supernode_capable);
    EXPECT_TRUE(s.is_supernode_player(sn));
  }
}

TEST(Scenario, SupernodeSelectionCappedByCapablePool) {
  auto p = small_params();
  p.num_supernodes = 10'000;  // far more than capable players
  Scenario s = Scenario::build(p);
  EXPECT_LT(s.supernode_players().size(), 200u);
}

TEST(Scenario, NonSupernodePlayersFlaggedFalse) {
  Scenario s = Scenario::build(small_params());
  std::set<std::size_t> sns(s.supernode_players().begin(),
                            s.supernode_players().end());
  for (std::size_t i = 0; i < s.population().size(); ++i) {
    EXPECT_EQ(s.is_supernode_player(i), sns.contains(i));
  }
}

TEST(Scenario, EveryPlayerHasValidGame) {
  Scenario s = Scenario::build(small_params());
  for (std::size_t i = 0; i < s.population().size(); ++i) {
    const auto g = s.player_game(i);
    EXPECT_GE(g, 0);
    EXPECT_LT(g, static_cast<int>(game::game_catalog().size()));
  }
}

TEST(Scenario, GameMixIsDiverse) {
  // Friend-driven assignment must not collapse onto a single title.
  Scenario s = Scenario::build(small_params());
  std::vector<int> counts(game::game_catalog().size(), 0);
  for (auto g : s.player_games()) ++counts[static_cast<std::size_t>(g)];
  for (std::size_t g = 0; g < counts.size(); ++g) {
    EXPECT_GT(counts[g], 40) << "game " << g << " nearly extinct";
    EXPECT_LT(counts[g], 500) << "game " << g << " dominates";
  }
}

TEST(Scenario, SupernodeCapacityAtLeastOne) {
  Scenario s = Scenario::build(small_params());
  for (std::size_t sn : s.supernode_players()) {
    EXPECT_GE(s.supernode_capacity(sn), 1);
    EXPECT_DOUBLE_EQ(s.supernode_uplink_kbps(sn),
                     s.supernode_capacity(sn) *
                         s.params().supernode_kbps_per_slot);
  }
}

TEST(Scenario, DeterministicForSameSeed) {
  Scenario a = Scenario::build(small_params(9));
  Scenario b = Scenario::build(small_params(9));
  EXPECT_EQ(a.supernode_players(), b.supernode_players());
  EXPECT_EQ(a.player_games(), b.player_games());
}

TEST(Scenario, DifferentSeedsDiffer) {
  Scenario a = Scenario::build(small_params(1));
  Scenario b = Scenario::build(small_params(2));
  EXPECT_NE(a.player_games(), b.player_games());
}

TEST(Scenario, PlanetLabProfile) {
  ScenarioParams p = ScenarioParams::planetlab_defaults(3);
  p.num_players = 300;
  p.num_supernodes = 50;
  Scenario s = Scenario::build(p);
  EXPECT_EQ(s.datacenters().size(), 2u);
  const auto& topo = s.topology();
  EXPECT_NE(topo.host(s.datacenters()[0]).label.find("Princeton"),
            std::string::npos);
  EXPECT_EQ(s.edge_servers().size(), 8u);
  // PlanetLab: 300-of-750 capable scales to a 40% capable fraction.
  EXPECT_GT(s.supernode_players().size(), 20u);
}

TEST(Scenario, PlanetLabDatacenterSweepAddsSites) {
  ScenarioParams p = ScenarioParams::planetlab_defaults(3);
  p.num_players = 200;
  p.num_datacenters = 6;
  Scenario s = Scenario::build(p);
  EXPECT_EQ(s.datacenters().size(), 6u);
}

TEST(Scenario, SegmentPeriodFromFps) {
  ScenarioParams p = ScenarioParams::simulation_defaults();
  p.fps = 30.0;
  p.frames_per_segment = 3;
  EXPECT_NEAR(p.segment_period_ms(), 100.0, 1e-9);
}

TEST(Scenario, ForkRngIsDeterministicPerLabel) {
  Scenario s = Scenario::build(small_params(5));
  auto a = s.fork_rng("x");
  auto b = s.fork_rng("x");
  EXPECT_EQ(a(), b());
}

TEST(Scenario, RejectsDegenerateParams) {
  ScenarioParams p = small_params();
  p.num_players = 0;
  EXPECT_THROW(Scenario::build(p), std::logic_error);
}

}  // namespace
}  // namespace cloudfog::systems
