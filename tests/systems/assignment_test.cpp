#include "systems/assignment.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace cloudfog::systems {
namespace {

Scenario small_scenario(std::uint64_t seed = 1) {
  ScenarioParams p = ScenarioParams::simulation_defaults(seed);
  p.num_players = 600;
  p.num_datacenters = 5;
  p.num_edge_servers = 6;
  p.num_supernodes = 40;
  return Scenario::build(p);
}

std::vector<std::size_t> all_players(const Scenario& s) {
  std::vector<std::size_t> out(s.population().size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = i;
  return out;
}

TEST(SystemKind, Names) {
  EXPECT_STREQ(to_string(SystemKind::kCloud), "Cloud");
  EXPECT_STREQ(to_string(SystemKind::kEdgeCloud), "EdgeCloud");
  EXPECT_STREQ(to_string(SystemKind::kCloudFogB), "CloudFog/B");
  EXPECT_STREQ(to_string(SystemKind::kCloudFogA), "CloudFog/A");
}

TEST(SystemKind, StrategyFlags) {
  EXPECT_FALSE(uses_supernodes(SystemKind::kCloud));
  EXPECT_FALSE(uses_supernodes(SystemKind::kEdgeCloud));
  EXPECT_TRUE(uses_supernodes(SystemKind::kCloudFogB));
  EXPECT_TRUE(uses_adaptation(SystemKind::kCloudFogAdapt));
  EXPECT_FALSE(uses_adaptation(SystemKind::kCloudFogSchedule));
  EXPECT_TRUE(uses_scheduling(SystemKind::kCloudFogSchedule));
  EXPECT_TRUE(uses_adaptation(SystemKind::kCloudFogA));
  EXPECT_TRUE(uses_scheduling(SystemKind::kCloudFogA));
}

TEST(Assignment, CloudPutsEveryoneOnNearestDatacenter) {
  Scenario s = small_scenario();
  util::Rng rng(1);
  const auto plan = assign_players(SystemKind::kCloud, s, all_players(s), rng);
  EXPECT_EQ(plan.players.size(), 600u);
  EXPECT_EQ(plan.cloud_supported(), 600u);
  EXPECT_TRUE(plan.active_supernodes.empty());
  const auto& topo = s.topology();
  const auto dcs = s.datacenters();
  for (const auto& pa : plan.players) {
    EXPECT_EQ(pa.type, ServerType::kDatacenter);
    EXPECT_EQ(pa.server, pa.home_dc);
    EXPECT_EQ(pa.home_dc, topo.nearest(s.player_host(pa.pop_index), dcs));
  }
}

TEST(Assignment, OutputSortedByPopulationIndex) {
  Scenario s = small_scenario();
  util::Rng rng(2);
  const auto plan = assign_players(SystemKind::kCloud, s, all_players(s), rng);
  for (std::size_t i = 1; i < plan.players.size(); ++i) {
    EXPECT_LT(plan.players[i - 1].pop_index, plan.players[i].pop_index);
  }
}

TEST(Assignment, EdgeCloudRespectsCapacity) {
  Scenario s = small_scenario();
  util::Rng rng(3);
  const auto plan =
      assign_players(SystemKind::kEdgeCloud, s, all_players(s), rng);
  std::map<NodeId, std::size_t> edge_load;
  for (const auto& pa : plan.players) {
    if (pa.type == ServerType::kEdge) ++edge_load[pa.server];
  }
  for (const auto& [server, load] : edge_load) {
    EXPECT_LE(load, s.params().edge_capacity);
  }
  EXPECT_GT(plan.edge_supported(), 0u);
  EXPECT_EQ(plan.edge_supported() + plan.cloud_supported(), 600u);
}

TEST(Assignment, EdgeServedPlayersAreCloserToTheirEdge) {
  Scenario s = small_scenario();
  util::Rng rng(4);
  const auto plan =
      assign_players(SystemKind::kEdgeCloud, s, all_players(s), rng);
  const auto& topo = s.topology();
  for (const auto& pa : plan.players) {
    if (pa.type == ServerType::kEdge) {
      const NodeId host = s.player_host(pa.pop_index);
      EXPECT_LT(topo.expected_server_one_way_ms(pa.server, host),
                topo.expected_one_way_ms(host, pa.home_dc));
    }
  }
}

TEST(Assignment, CloudFogRespectsSupernodeCapacity) {
  Scenario s = small_scenario();
  util::Rng rng(5);
  const auto plan =
      assign_players(SystemKind::kCloudFogB, s, all_players(s), rng);
  std::map<NodeId, int> sn_load;
  for (const auto& pa : plan.players) {
    if (pa.type == ServerType::kSupernode) ++sn_load[pa.server];
  }
  EXPECT_GT(plan.supernode_supported(), 0u);
  for (const auto& [server, load] : sn_load) {
    // Find the supernode's population index to check its capacity.
    int capacity = -1;
    for (std::size_t sn : s.supernode_players()) {
      if (s.player_host(sn) == server) capacity = s.supernode_capacity(sn);
    }
    ASSERT_GE(capacity, 1) << "server not in supernode list";
    EXPECT_LE(load, capacity);
  }
}

TEST(Assignment, ActiveSupernodesExactlyThoseServing) {
  Scenario s = small_scenario();
  util::Rng rng(6);
  const auto plan =
      assign_players(SystemKind::kCloudFogB, s, all_players(s), rng);
  std::set<NodeId> serving_hosts;
  for (const auto& pa : plan.players) {
    if (pa.type == ServerType::kSupernode) serving_hosts.insert(pa.server);
  }
  EXPECT_EQ(plan.active_supernodes.size(), serving_hosts.size());
  for (std::size_t sn : plan.active_supernodes) {
    EXPECT_TRUE(serving_hosts.contains(s.player_host(sn)));
  }
}

TEST(Assignment, CloudFogStreamLatencyWithinGameRequirement) {
  // The Section III-A3 L_max filter: a supernode-served player's streaming
  // path must be within its game's latency requirement (modulo the small
  // probe jitter).
  Scenario s = small_scenario();
  util::Rng rng(7);
  const auto plan =
      assign_players(SystemKind::kCloudFogB, s, all_players(s), rng);
  for (const auto& pa : plan.players) {
    if (pa.type == ServerType::kSupernode) {
      const auto& profile = game::game_by_id(s.player_game(pa.pop_index));
      EXPECT_LE(pa.stream_one_way_ms, profile.latency_requirement_ms * 1.3);
    }
  }
}

TEST(Assignment, CloudFogUnassignedFallBackToCloud) {
  Scenario s = small_scenario();
  util::Rng rng(8);
  const auto plan =
      assign_players(SystemKind::kCloudFogB, s, all_players(s), rng);
  for (const auto& pa : plan.players) {
    if (pa.type == ServerType::kDatacenter) {
      EXPECT_EQ(pa.server, pa.home_dc);
    }
  }
  EXPECT_EQ(plan.supernode_supported() + plan.cloud_supported(), 600u);
}

TEST(Assignment, SubsetOfPlayers) {
  Scenario s = small_scenario();
  util::Rng rng(9);
  const std::vector<std::size_t> subset{3, 5, 8, 13, 21};
  const auto plan = assign_players(SystemKind::kCloud, s, subset, rng);
  EXPECT_EQ(plan.players.size(), 5u);
  for (std::size_t i = 0; i < subset.size(); ++i) {
    EXPECT_EQ(plan.players[i].pop_index, subset[i]);
  }
}

TEST(Assignment, CloudFogServesMoreThanEdgeCloud) {
  // The paper's premise: many supernodes offload far more players than a
  // handful of edge servers.
  Scenario s = small_scenario();
  util::Rng rng1(10), rng2(10);
  const auto fog = assign_players(SystemKind::kCloudFogB, s, all_players(s), rng1);
  const auto edge =
      assign_players(SystemKind::kEdgeCloud, s, all_players(s), rng2);
  EXPECT_GT(fog.supernode_supported(), edge.edge_supported());
}

}  // namespace
}  // namespace cloudfog::systems
