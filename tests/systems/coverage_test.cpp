#include "systems/coverage.h"

#include <gtest/gtest.h>

namespace cloudfog::systems {
namespace {

/// A scenario sized so the coverage experiment runs in well under a second.
Scenario coverage_scenario() {
  ScenarioParams p = ScenarioParams::simulation_defaults(1);
  p.num_players = 1'200;
  p.num_datacenters = 15;
  p.num_supernodes = 100;
  return Scenario::build(p);
}

CoverageConfig quick_config() {
  CoverageConfig c;
  c.datacenter_counts = {5, 10, 15};
  c.supernode_counts = {0, 50, 100};
  c.latency_requirements = {30, 70, 110};
  c.base_datacenters = 5;
  c.samples = 2;
  c.warmup_ms = kMsPerMinute;
  c.sample_interval_ms = 5 * kMsPerMinute;
  return c;
}

TEST(Coverage, ValuesAreFractions) {
  const auto result = measure_coverage(coverage_scenario(), quick_config());
  for (const auto& row : result.dc_sweep)
    for (double v : row) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  for (const auto& row : result.sn_sweep)
    for (double v : row) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  EXPECT_GT(result.mean_online, 0.0);
}

TEST(Coverage, MonotoneInLatencyRequirement) {
  const auto result = measure_coverage(coverage_scenario(), quick_config());
  for (const auto& row : result.dc_sweep) {
    for (std::size_t j = 1; j < row.size(); ++j) EXPECT_GE(row[j], row[j - 1]);
  }
  for (const auto& row : result.sn_sweep) {
    for (std::size_t j = 1; j < row.size(); ++j) EXPECT_GE(row[j], row[j - 1]);
  }
}

TEST(Coverage, MonotoneInDatacenterCount) {
  const auto result = measure_coverage(coverage_scenario(), quick_config());
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t i = 1; i < result.dc_sweep.size(); ++i) {
      EXPECT_GE(result.dc_sweep[i][j], result.dc_sweep[i - 1][j]);
    }
  }
}

TEST(Coverage, SupernodesNeverHurt) {
  const auto result = measure_coverage(coverage_scenario(), quick_config());
  // Row 0 is the zero-supernode baseline (base datacenters only).
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t i = 1; i < result.sn_sweep.size(); ++i) {
      EXPECT_GE(result.sn_sweep[i][j], result.sn_sweep[0][j]);
    }
  }
}

TEST(Coverage, ZeroSupernodesMatchBaseDatacenterRow) {
  const auto result = measure_coverage(coverage_scenario(), quick_config());
  // sn_sweep[0] uses base_datacenters = 5, which is dc_sweep row 0.
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(result.sn_sweep[0][j], result.dc_sweep[0][j], 1e-9);
  }
}

TEST(Coverage, SupernodesIncreaseCoverageMeaningfully) {
  // The paper's headline: supernodes are an effective alternative to
  // datacenters. 100 supernodes on 1,200 players must lift strict-latency
  // coverage visibly.
  const auto result = measure_coverage(coverage_scenario(), quick_config());
  EXPECT_GT(result.sn_sweep[2][0], result.sn_sweep[0][0] + 0.02);
}

TEST(Coverage, RejectsUndersizedScenario) {
  ScenarioParams p = ScenarioParams::simulation_defaults(1);
  p.num_players = 300;
  p.num_datacenters = 3;  // fewer than the sweep needs
  p.num_supernodes = 10;
  Scenario s = Scenario::build(p);
  EXPECT_THROW(measure_coverage(s, quick_config()), std::logic_error);
}

TEST(Coverage, RejectsEmptyAxes) {
  auto c = quick_config();
  c.latency_requirements.clear();
  EXPECT_THROW(measure_coverage(coverage_scenario(), c), std::logic_error);
}

TEST(Coverage, DeterministicForSameScenario) {
  Scenario s = coverage_scenario();
  const auto r1 = measure_coverage(s, quick_config());
  const auto r2 = measure_coverage(s, quick_config());
  EXPECT_EQ(r1.dc_sweep, r2.dc_sweep);
  EXPECT_EQ(r1.sn_sweep, r2.sn_sweep);
}

}  // namespace
}  // namespace cloudfog::systems
