#include "p2p/churn.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/types.h"

namespace cloudfog::p2p {
namespace {

struct ChurnWorld {
  explicit ChurnWorld(std::size_t n, std::uint64_t seed = 1,
                      bool warm_start = true) {
    std::vector<NodeId> hosts(n);
    for (std::size_t i = 0; i < n; ++i) hosts[i] = static_cast<NodeId>(i);
    util::Rng pop_rng(seed);
    population = std::make_unique<Population>(hosts, PopulationConfig{}, pop_rng);
    util::Rng graph_rng(seed + 1);
    graph = std::make_unique<SocialGraph>(n, SocialGraphConfig{}, graph_rng);
    ChurnConfig config;
    config.warm_start = warm_start;
    churn = std::make_unique<ChurnProcess>(sim, *population, graph.get(), config,
                                           util::Rng(seed + 2));
  }

  sim::Simulator sim;
  std::unique_ptr<Population> population;
  std::unique_ptr<SocialGraph> graph;
  std::unique_ptr<ChurnProcess> churn;
};

TEST(Churn, WarmStartNearStationaryFraction) {
  ChurnWorld world(5'000);
  world.churn->start();
  const double expected = world.population->expected_online_fraction();
  const double actual =
      static_cast<double>(world.churn->online_count()) / 5'000.0;
  EXPECT_NEAR(actual, expected, 0.03);
}

TEST(Churn, StaysNearStationaryOverHours) {
  ChurnWorld world(3'000);
  world.churn->start();
  const double expected = world.population->expected_online_fraction();
  for (int hour = 1; hour <= 6; ++hour) {
    world.sim.run_until(hour * kMsPerHour);
    const double actual =
        static_cast<double>(world.churn->online_count()) / 3'000.0;
    EXPECT_NEAR(actual, expected, 0.05) << "hour " << hour;
  }
}

TEST(Churn, ColdStartBeginsEmptyAndFills) {
  ChurnWorld world(2'000, 1, /*warm_start=*/false);
  world.churn->start();
  EXPECT_EQ(world.churn->online_count(), 0u);
  // Arrivals at 5/s: after 60 s roughly 300 players joined.
  world.sim.run_until(60.0 * kMsPerSecond);
  EXPECT_GT(world.churn->online_count(), 200u);
  EXPECT_LT(world.churn->online_count(), 400u);
}

TEST(Churn, JoinAndLeaveCallbacksBalance) {
  ChurnWorld world(1'000, 2, /*warm_start=*/false);
  std::size_t joins = 0, leaves = 0;
  world.churn->set_callbacks([&](std::size_t) { ++joins; },
                             [&](std::size_t) { ++leaves; });
  world.churn->start();
  world.sim.run_until(2.0 * kMsPerHour);
  EXPECT_EQ(joins, world.churn->total_joins());
  EXPECT_EQ(leaves, world.churn->total_leaves());
  EXPECT_EQ(joins - leaves, world.churn->online_count());
  EXPECT_GT(joins, 0u);
  EXPECT_GT(leaves, 0u);
}

TEST(Churn, OnlinePlayersHaveGames) {
  ChurnWorld world(1'000);
  world.churn->start();
  world.sim.run_until(10.0 * kMsPerMinute);
  for (std::size_t p : world.churn->online_players()) {
    EXPECT_TRUE(world.churn->is_online(p));
    EXPECT_GE(world.churn->game_of(p), 0);
    EXPECT_LT(world.churn->game_of(p),
              static_cast<int>(game::game_catalog().size()));
  }
}

TEST(Churn, OfflinePlayersHaveNoGame) {
  ChurnWorld world(1'000);
  world.churn->start();
  for (std::size_t i = 0; i < 1'000; ++i) {
    if (!world.churn->is_online(i)) {
      EXPECT_EQ(world.churn->game_of(i), -1);
    }
  }
}

TEST(Churn, OnlinePlayersSortedAndConsistent) {
  ChurnWorld world(500);
  world.churn->start();
  world.sim.run_until(kMsPerMinute);
  const auto online = world.churn->online_players();
  EXPECT_EQ(online.size(), world.churn->online_count());
  for (std::size_t i = 1; i < online.size(); ++i) {
    EXPECT_LT(online[i - 1], online[i]);
  }
}

TEST(Churn, DeterministicForSameSeed) {
  ChurnWorld a(500, 9), b(500, 9);
  a.churn->start();
  b.churn->start();
  a.sim.run_until(kMsPerHour);
  b.sim.run_until(kMsPerHour);
  EXPECT_EQ(a.churn->online_players(), b.churn->online_players());
  EXPECT_EQ(a.churn->total_joins(), b.churn->total_joins());
}

TEST(Churn, StartTwiceRejected) {
  ChurnWorld world(100);
  world.churn->start();
  EXPECT_THROW(world.churn->start(), std::logic_error);
}

TEST(Churn, CallbacksAfterStartRejected) {
  ChurnWorld world(100);
  world.churn->start();
  EXPECT_THROW(world.churn->set_callbacks([](std::size_t) {}, nullptr),
               std::logic_error);
}

TEST(Churn, PlayersChurnThroughSessions) {
  // Over a simulated day every player should complete roughly one session.
  ChurnWorld world(800, 5, /*warm_start=*/false);
  world.churn->start();
  world.sim.run_until(24.0 * kMsPerHour);
  EXPECT_GT(world.churn->total_joins(), 700u);
  EXPECT_GT(world.churn->total_leaves(), 500u);
}

}  // namespace
}  // namespace cloudfog::p2p
