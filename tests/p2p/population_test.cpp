#include "p2p/population.h"

#include <gtest/gtest.h>

#include <vector>

namespace cloudfog::p2p {
namespace {

std::vector<NodeId> make_hosts(std::size_t n) {
  std::vector<NodeId> hosts(n);
  for (std::size_t i = 0; i < n; ++i) hosts[i] = static_cast<NodeId>(i + 100);
  return hosts;
}

TEST(Population, SizeAndHostMapping) {
  util::Rng rng(1);
  Population pop(make_hosts(50), PopulationConfig{}, rng);
  EXPECT_EQ(pop.size(), 50u);
  EXPECT_EQ(pop.player(0).host, 100u);
  EXPECT_EQ(pop.player(49).host, 149u);
}

TEST(Population, IndexOutOfRangeRejected) {
  util::Rng rng(1);
  Population pop(make_hosts(5), PopulationConfig{}, rng);
  EXPECT_THROW(pop.player(5), std::logic_error);
}

TEST(Population, SupernodeCapableFractionApproximate) {
  util::Rng rng(2);
  Population pop(make_hosts(10'000), PopulationConfig{}, rng);
  const auto capable = pop.supernode_capable_indices();
  // Paper: 10% of players have supernode capacity.
  EXPECT_NEAR(static_cast<double>(capable.size()) / 10'000.0, 0.10, 0.01);
}

TEST(Population, CapacityMeanMatchesPareto) {
  util::Rng rng(3);
  Population pop(make_hosts(50'000), PopulationConfig{}, rng);
  double total = 0.0;
  for (const auto& p : pop.players()) total += p.capacity;
  // Pareto with mean 5 (alpha = 1, truncated).
  EXPECT_NEAR(total / 50'000.0, 5.0, 0.5);
}

TEST(Population, CapacitiesPositive) {
  util::Rng rng(3);
  Population pop(make_hosts(1'000), PopulationConfig{}, rng);
  for (const auto& p : pop.players()) EXPECT_GT(p.capacity, 0.0);
}

TEST(Population, PlayTimeClassFractions) {
  util::Rng rng(4);
  Population pop(make_hosts(30'000), PopulationConfig{}, rng);
  int short_count = 0, medium_count = 0, long_count = 0;
  for (const auto& p : pop.players()) {
    switch (p.play_class) {
      case PlayTimeClass::kShort: ++short_count; break;
      case PlayTimeClass::kMedium: ++medium_count; break;
      case PlayTimeClass::kLong: ++long_count; break;
    }
  }
  // Paper: 50% / 30% / 20%.
  EXPECT_NEAR(short_count / 30'000.0, 0.5, 0.02);
  EXPECT_NEAR(medium_count / 30'000.0, 0.3, 0.02);
  EXPECT_NEAR(long_count / 30'000.0, 0.2, 0.02);
}

TEST(Population, PlayHoursWithinClassBounds) {
  util::Rng rng(5);
  Population pop(make_hosts(5'000), PopulationConfig{}, rng);
  for (const auto& p : pop.players()) {
    switch (p.play_class) {
      case PlayTimeClass::kShort:
        EXPECT_GT(p.daily_play_hours, 0.0);
        EXPECT_LE(p.daily_play_hours, 2.0);
        break;
      case PlayTimeClass::kMedium:
        EXPECT_GE(p.daily_play_hours, 2.0);
        EXPECT_LE(p.daily_play_hours, 5.0);
        break;
      case PlayTimeClass::kLong:
        EXPECT_GE(p.daily_play_hours, 5.0);
        EXPECT_LE(p.daily_play_hours, 24.0);
        break;
    }
  }
}

TEST(Population, ExpectedOnlineFractionMatchesClassMix) {
  util::Rng rng(6);
  Population pop(make_hosts(30'000), PopulationConfig{}, rng);
  // E[hours] = 0.5*1 + 0.3*3.5 + 0.2*14.5 = 4.45 -> fraction ~0.185.
  EXPECT_NEAR(pop.expected_online_fraction(), 0.185, 0.02);
}

TEST(Population, DeterministicForSameRngSeed) {
  util::Rng r1(7), r2(7);
  Population a(make_hosts(100), PopulationConfig{}, r1);
  Population b(make_hosts(100), PopulationConfig{}, r2);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.player(i).capacity, b.player(i).capacity);
    EXPECT_EQ(a.player(i).supernode_capable, b.player(i).supernode_capable);
    EXPECT_EQ(a.player(i).daily_play_hours, b.player(i).daily_play_hours);
  }
}

TEST(Population, ConfigurableSupernodeFraction) {
  util::Rng rng(8);
  PopulationConfig config;
  config.supernode_capable_fraction = 0.4;  // PlanetLab: 300 of 750
  Population pop(make_hosts(10'000), config, rng);
  EXPECT_NEAR(
      static_cast<double>(pop.supernode_capable_indices().size()) / 10'000.0,
      0.4, 0.02);
}

TEST(Population, InvalidConfigRejected) {
  util::Rng rng(9);
  PopulationConfig config;
  config.supernode_capable_fraction = 1.5;
  EXPECT_THROW(Population(make_hosts(10), config, rng), std::logic_error);
  PopulationConfig config2;
  config2.short_fraction = 0.8;
  config2.medium_fraction = 0.4;
  EXPECT_THROW(Population(make_hosts(10), config2, rng), std::logic_error);
}

}  // namespace
}  // namespace cloudfog::p2p
