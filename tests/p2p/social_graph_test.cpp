#include "p2p/social_graph.h"

#include <gtest/gtest.h>

#include <set>

namespace cloudfog::p2p {
namespace {

TEST(SocialGraph, EveryPlayerHasMinimumDegree) {
  util::Rng rng(1);
  SocialGraph graph(500, SocialGraphConfig{}, rng);
  for (std::size_t i = 0; i < graph.size(); ++i) {
    EXPECT_GE(graph.degree(i), 1u);
  }
}

TEST(SocialGraph, DegreeCapRespected) {
  util::Rng rng(2);
  SocialGraphConfig config;
  config.max_friends = 20;
  SocialGraph graph(500, config, rng);
  for (std::size_t i = 0; i < graph.size(); ++i) {
    EXPECT_LE(graph.degree(i), 25u);  // cap + patch-up attachments
  }
}

TEST(SocialGraph, UndirectedAndConsistent) {
  util::Rng rng(3);
  SocialGraph graph(300, SocialGraphConfig{}, rng);
  for (std::size_t i = 0; i < graph.size(); ++i) {
    for (std::size_t f : graph.friends(i)) {
      EXPECT_TRUE(graph.are_friends(f, i)) << i << " <-> " << f;
    }
  }
}

TEST(SocialGraph, NoSelfLoops) {
  util::Rng rng(4);
  SocialGraph graph(300, SocialGraphConfig{}, rng);
  for (std::size_t i = 0; i < graph.size(); ++i) {
    EXPECT_FALSE(graph.are_friends(i, i));
  }
}

TEST(SocialGraph, NoDuplicateEdges) {
  util::Rng rng(5);
  SocialGraph graph(300, SocialGraphConfig{}, rng);
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const auto& friends = graph.friends(i);
    std::set<std::size_t> unique(friends.begin(), friends.end());
    EXPECT_EQ(unique.size(), friends.size());
  }
}

TEST(SocialGraph, PowerLawSkewsDegrees) {
  util::Rng rng(6);
  SocialGraph graph(5'000, SocialGraphConfig{}, rng);
  int low = 0, high = 0;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    if (graph.degree(i) <= 5) ++low;
    if (graph.degree(i) >= 40) ++high;
  }
  EXPECT_GT(low, high);  // skew 0.5: small degrees more common
  EXPECT_GT(high, 0);    // but a heavy tail exists
}

TEST(SocialGraph, MeanDegreeReasonable) {
  util::Rng rng(7);
  SocialGraph graph(2'000, SocialGraphConfig{}, rng);
  EXPECT_GT(graph.mean_degree(), 2.0);
  EXPECT_LT(graph.mean_degree(), 40.0);
}

TEST(SocialGraph, TinyGraphs) {
  util::Rng rng(8);
  SocialGraph empty(0, SocialGraphConfig{}, rng);
  EXPECT_EQ(empty.size(), 0u);
  SocialGraph single(1, SocialGraphConfig{}, rng);
  EXPECT_EQ(single.degree(0), 0u);  // nobody to befriend
  SocialGraph pair(2, SocialGraphConfig{}, rng);
  EXPECT_TRUE(pair.are_friends(0, 1));
}

TEST(SocialGraph, DeterministicForSameSeed) {
  util::Rng r1(9), r2(9);
  SocialGraph a(200, SocialGraphConfig{}, r1);
  SocialGraph b(200, SocialGraphConfig{}, r2);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(a.friends(i), b.friends(i));
  }
}

TEST(SocialGraph, OutOfRangeRejected) {
  util::Rng rng(10);
  SocialGraph graph(10, SocialGraphConfig{}, rng);
  EXPECT_THROW(graph.friends(10), std::logic_error);
}

TEST(SocialGraph, InvalidConfigRejected) {
  util::Rng rng(11);
  SocialGraphConfig config;
  config.min_friends = 0;
  EXPECT_THROW(SocialGraph(10, config, rng), std::logic_error);
  SocialGraphConfig config2;
  config2.min_friends = 10;
  config2.max_friends = 5;
  EXPECT_THROW(SocialGraph(10, config2, rng), std::logic_error);
}

}  // namespace
}  // namespace cloudfog::p2p
