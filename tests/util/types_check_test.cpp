#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"
#include "util/types.h"

namespace cloudfog {
namespace {

TEST(Types, ByteKbitConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(bytes_to_kbit(1'500.0), 12.0);  // one MTU packet
  EXPECT_DOUBLE_EQ(kbit_to_bytes(12.0), 1'500.0);
  for (double bytes : {1.0, 125.0, 64'000.0}) {
    EXPECT_NEAR(kbit_to_bytes(bytes_to_kbit(bytes)), bytes, 1e-9);
  }
}

TEST(Types, TransmissionTime) {
  // 1000 kbit at 1000 kbps = 1 second = 1000 ms.
  EXPECT_DOUBLE_EQ(transmission_ms(1'000.0, 1'000.0), 1'000.0);
  EXPECT_DOUBLE_EQ(transmission_ms(0.0, 1'000.0), 0.0);
  EXPECT_TRUE(std::isinf(transmission_ms(1.0, 0.0)));
}

TEST(Types, TimeConstants) {
  EXPECT_DOUBLE_EQ(kMsPerSecond, 1'000.0);
  EXPECT_DOUBLE_EQ(kMsPerMinute, 60'000.0);
  EXPECT_DOUBLE_EQ(kMsPerHour, 3'600'000.0);
}

TEST(Types, InvalidNodeIsDistinct) {
  EXPECT_NE(kInvalidNode, NodeId{0});
  EXPECT_EQ(kInvalidNode, std::numeric_limits<NodeId>::max());
}

TEST(Check, PassingConditionIsSilent) {
  CF_CHECK(1 + 1 == 2);
  CF_CHECK_MSG(true, "never shown");
}

TEST(Check, FailureThrowsLogicErrorWithContext) {
  try {
    CF_CHECK_MSG(false, "the message");
    FAIL() << "CF_CHECK_MSG(false) must throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("types_check_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("false"), std::string::npos);
  }
}

TEST(Check, PlainCheckThrowsWithoutMessage) {
  EXPECT_THROW(CF_CHECK(2 < 1), std::logic_error);
}

TEST(Check, ConditionEvaluatedExactlyOnce) {
  int evaluations = 0;
  CF_CHECK(++evaluations > 0);
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace cloudfog
