// Unit tests for validated environment parsing (util/env.h): the bench
// knobs CLOUDFOG_BENCH_SEEDS / CLOUDFOG_BENCH_JOBS must reject garbage
// loudly instead of silently behaving like the default.
#include "util/env.h"

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

namespace cloudfog::util {
namespace {

class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) { ::unsetenv(name); }
  ~EnvGuard() { ::unsetenv(name_.c_str()); }
  void set(const char* value) { ::setenv(name_.c_str(), value, 1); }

 private:
  std::string name_;
};

TEST(EnvLongOrTest, UnsetReturnsFallback) {
  EnvGuard env("CLOUDFOG_TEST_ENV_LONG");
  EXPECT_EQ(env_long_or("CLOUDFOG_TEST_ENV_LONG", 1, 50, 3), 3);
}

TEST(EnvLongOrTest, ValidValueParses) {
  EnvGuard env("CLOUDFOG_TEST_ENV_LONG");
  env.set("17");
  EXPECT_EQ(env_long_or("CLOUDFOG_TEST_ENV_LONG", 1, 50, 3), 17);
  env.set("1");
  EXPECT_EQ(env_long_or("CLOUDFOG_TEST_ENV_LONG", 1, 50, 3), 1);
  env.set("50");
  EXPECT_EQ(env_long_or("CLOUDFOG_TEST_ENV_LONG", 1, 50, 3), 50);
}

TEST(EnvLongOrTest, TrailingGarbageRejected) {
  EnvGuard env("CLOUDFOG_TEST_ENV_LONG");
  env.set("7x");
  EXPECT_EQ(env_long_or("CLOUDFOG_TEST_ENV_LONG", 1, 50, 3), 3);
  env.set("abc");
  EXPECT_EQ(env_long_or("CLOUDFOG_TEST_ENV_LONG", 1, 50, 3), 3);
  env.set("");
  EXPECT_EQ(env_long_or("CLOUDFOG_TEST_ENV_LONG", 1, 50, 3), 3);
  env.set(" 7");  // strtol skips leading whitespace — still a valid number
  EXPECT_EQ(env_long_or("CLOUDFOG_TEST_ENV_LONG", 1, 50, 3), 7);
}

TEST(EnvLongOrTest, OutOfRangeRejected) {
  EnvGuard env("CLOUDFOG_TEST_ENV_LONG");
  env.set("0");
  EXPECT_EQ(env_long_or("CLOUDFOG_TEST_ENV_LONG", 1, 50, 3), 3);
  env.set("51");
  EXPECT_EQ(env_long_or("CLOUDFOG_TEST_ENV_LONG", 1, 50, 3), 3);
  env.set("-4");
  EXPECT_EQ(env_long_or("CLOUDFOG_TEST_ENV_LONG", 1, 50, 3), 3);
  // Value overflowing long: strtol reports ERANGE.
  env.set("999999999999999999999999999");
  EXPECT_EQ(env_long_or("CLOUDFOG_TEST_ENV_LONG", 1, 50, 3), 3);
}

}  // namespace
}  // namespace cloudfog::util
