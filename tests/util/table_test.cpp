#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace cloudfog::util {
namespace {

TEST(Table, HeaderAndRows) {
  Table t("demo");
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
  EXPECT_EQ(t.row(1)[1], "4");
  EXPECT_EQ(t.title(), "demo");
}

TEST(Table, RowWidthMustMatchHeader) {
  Table t("demo");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(Table, AddRowBeforeHeaderRejected) {
  Table t("demo");
  EXPECT_THROW(t.add_row({"x"}), std::logic_error);
}

TEST(Table, SetHeaderAfterRowsRejected) {
  Table t("demo");
  t.set_header({"a"});
  t.add_row({"1"});
  EXPECT_THROW(t.set_header({"b"}), std::logic_error);
}

TEST(Table, RowValuesFormatting) {
  Table t("demo");
  t.set_header({"x", "y"});
  t.add_row_values({1.23456, 2.0}, 2);
  EXPECT_EQ(t.row(0)[0], "1.23");
  EXPECT_EQ(t.row(0)[1], "2.00");
}

TEST(Table, TextRenderAligned) {
  Table t("demo");
  t.set_header({"name", "v"});
  t.add_row({"long-name-here", "1"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("== demo =="), std::string::npos);
  EXPECT_NE(text.find("long-name-here"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Table, StreamOperatorMatchesToText) {
  Table t("demo");
  t.set_header({"a"});
  t.add_row({"1"});
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.to_text());
}

TEST(Table, CsvPlainFields) {
  Table t("demo");
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t("demo");
  t.set_header({"a"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, RowIndexOutOfRange) {
  Table t("demo");
  t.set_header({"a"});
  EXPECT_THROW(t.row(0), std::logic_error);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace cloudfog::util
