#include "util/flags.h"

#include <gtest/gtest.h>

namespace cloudfog::util {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, KeyEqualsValue) {
  const Flags f = parse({"--profile=sim", "--players=2000"});
  EXPECT_TRUE(f.has("profile"));
  EXPECT_EQ(f.get("profile"), "sim");
  EXPECT_EQ(f.get_int("players", 0), 2'000);
}

TEST(Flags, KeySpaceValue) {
  const Flags f = parse({"--seed", "42"});
  EXPECT_EQ(f.get_int("seed", 0), 42);
}

TEST(Flags, BareSwitchIsTrue) {
  const Flags f = parse({"--fast"});
  EXPECT_TRUE(f.get_bool("fast", false));
}

TEST(Flags, AbsentKeysUseFallbacks) {
  const Flags f = parse({});
  EXPECT_FALSE(f.has("x"));
  EXPECT_EQ(f.get("x", "dflt"), "dflt");
  EXPECT_EQ(f.get_int("x", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("x", 2.5), 2.5);
  EXPECT_TRUE(f.get_bool("x", true));
}

TEST(Flags, DoubleParsing) {
  const Flags f = parse({"--rate=2.5"});
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0.0), 2.5);
}

TEST(Flags, BooleanSpellings) {
  EXPECT_TRUE(parse({"--a=true"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=1"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=yes"}).get_bool("a", false));
  EXPECT_FALSE(parse({"--a=false"}).get_bool("a", true));
  EXPECT_FALSE(parse({"--a=0"}).get_bool("a", true));
  EXPECT_FALSE(parse({"--a=no"}).get_bool("a", true));
}

TEST(Flags, PositionalArguments) {
  const Flags f = parse({"input.txt", "--v=1", "output.txt"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "output.txt");
}

TEST(Flags, SwitchFollowedByFlagIsBare) {
  const Flags f = parse({"--fast", "--seed=1"});
  EXPECT_TRUE(f.get_bool("fast", false));
  EXPECT_EQ(f.get_int("seed", 0), 1);
}

TEST(Flags, UnknownDetection) {
  const Flags f = parse({"--good=1", "--typo=2"});
  const auto unknown = f.unknown({"good"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(Flags, MalformedInputsRejected) {
  EXPECT_THROW(parse({"--"}), std::logic_error);
  EXPECT_THROW(parse({"--n=abc"}).get_int("n", 0), std::logic_error);
  EXPECT_THROW(parse({"--r=1.2.3"}).get_double("r", 0.0), std::logic_error);
  EXPECT_THROW(parse({"--b=maybe"}).get_bool("b", false), std::logic_error);
}

TEST(Flags, LastDuplicateWins) {
  const Flags f = parse({"--x=1", "--x=2"});
  EXPECT_EQ(f.get_int("x", 0), 2);
}

TEST(Flags, EmptyValueViaEquals) {
  const Flags f = parse({"--k="});
  EXPECT_TRUE(f.has("k"));
  EXPECT_EQ(f.get("k", "fallback"), "");
}

}  // namespace
}  // namespace cloudfog::util
