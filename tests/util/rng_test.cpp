#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

namespace cloudfog::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsDeterministic) {
  Rng parent(7);
  Rng c1 = parent.fork("alpha");
  Rng c2 = Rng(7).fork("alpha");
  for (int i = 0; i < 50; ++i) EXPECT_EQ(c1(), c2());
}

TEST(Rng, ForkLabelsIndependent) {
  Rng parent(7);
  Rng a = parent.fork("alpha");
  Rng b = parent.fork("beta");
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng a(9), b(9);
  (void)a.fork("x");
  (void)a.fork("y");
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(3);
  double total = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) total += rng.uniform();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1'000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversFullRange) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 9);
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(6);
  for (int i = 0; i < 1'000; ++i) {
    const auto v = rng.uniform_int(-5, -1);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, -1);
  }
}

TEST(Rng, UniformIntRejectsInvertedBounds) {
  Rng rng(6);
  EXPECT_THROW(rng.uniform_int(3, 2), std::logic_error);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(8);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  const int n = 200'000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, LognormalMedian) {
  Rng rng(12);
  std::vector<double> samples;
  for (int i = 0; i < 50'001; ++i) samples.push_back(rng.lognormal(1.0, 0.5));
  std::nth_element(samples.begin(), samples.begin() + 25'000, samples.end());
  EXPECT_NEAR(samples[25'000], std::exp(1.0), 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double total = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) total += rng.exponential(0.25);
  EXPECT_NEAR(total / n, 4.0, 0.1);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(13);
  EXPECT_THROW(rng.exponential(0.0), std::logic_error);
  EXPECT_THROW(rng.exponential(-1.0), std::logic_error);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(14);
  double total = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(total / n, 3.5, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesApproximation) {
  Rng rng(15);
  double total = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(total / n, 200.0, 1.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(15);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ParetoAboveScale) {
  Rng rng(16);
  for (int i = 0; i < 10'000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ParetoMeanWithFiniteFirstMoment) {
  Rng rng(16);
  // alpha = 3: mean = xm * alpha / (alpha - 1) = 1.5 * xm.
  double total = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) total += rng.pareto(2.0, 3.0);
  EXPECT_NEAR(total / n, 3.0, 0.05);
}

TEST(Rng, ParetoWithMeanAlphaOneMatchesTarget) {
  // The paper's node-capacity distribution: Pareto(mean 5, alpha 1),
  // truncated. The truncated sample mean must track the requested mean.
  Rng rng(17);
  double total = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) total += rng.pareto_with_mean(5.0, 1.0);
  EXPECT_NEAR(total / n, 5.0, 0.25);
}

TEST(Rng, ParetoWithMeanRespectsCap) {
  Rng rng(17);
  for (int i = 0; i < 10'000; ++i)
    EXPECT_LE(rng.pareto_with_mean(5.0, 1.0, 20.0), 100.0);
}

TEST(Rng, ParetoWithMeanHighAlpha) {
  Rng rng(18);
  double total = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) total += rng.pareto_with_mean(10.0, 3.0);
  EXPECT_NEAR(total / n, 10.0, 0.3);
}

TEST(Rng, ZipfWithinRange) {
  Rng rng(19);
  for (int i = 0; i < 10'000; ++i) {
    const auto k = rng.zipf(50, 1.2);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 50u);
  }
}

TEST(Rng, ZipfRankOneMostFrequent) {
  Rng rng(19);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 50'000; ++i) ++counts[rng.zipf(10, 1.0)];
  for (std::size_t k = 2; k <= 10; ++k) EXPECT_GT(counts[1], counts[k]);
}

TEST(Rng, ZipfSingleton) {
  Rng rng(19);
  EXPECT_EQ(rng.zipf(1, 1.0), 1u);
}

TEST(Rng, PowerLawBounds) {
  Rng rng(20);
  for (int i = 0; i < 10'000; ++i) {
    const auto k = rng.power_law(1, 50, 0.5);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 50u);
  }
}

TEST(Rng, PowerLawSkewFavorsSmallDegrees) {
  Rng rng(20);
  int small = 0, large = 0;
  for (int i = 0; i < 20'000; ++i) {
    const auto k = rng.power_law(1, 50, 2.5);
    if (k <= 5) ++small;
    if (k >= 45) ++large;
  }
  EXPECT_GT(small, 10 * large);
}

TEST(Rng, PowerLawDegenerateRange) {
  Rng rng(20);
  EXPECT_EQ(rng.power_law(4, 4, 0.5), 4u);
}

TEST(Rng, IndexWithinBounds) {
  Rng rng(21);
  for (int i = 0; i < 1'000; ++i) EXPECT_LT(rng.index(17), 17u);
}

TEST(Rng, IndexRejectsEmptyRange) {
  Rng rng(21);
  EXPECT_THROW(rng.index(0), std::logic_error);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(22);
  const auto sample = rng.sample_indices(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t i : sample) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesFullPopulation) {
  Rng rng(22);
  const auto sample = rng.sample_indices(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleIndicesRejectsOversample) {
  Rng rng(22);
  EXPECT_THROW(rng.sample_indices(5, 6), std::logic_error);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(23);
  std::vector<double> weights{1.0, 3.0};
  int ones = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i)
    if (rng.weighted_index(weights) == 1) ++ones;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.01);
}

TEST(Rng, WeightedIndexSkipsZeroWeights) {
  Rng rng(23);
  std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.weighted_index(weights), 1u);
}

TEST(Rng, WeightedIndexRejectsAllZero) {
  Rng rng(23);
  std::vector<double> weights{0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(weights), std::logic_error);
}

TEST(Rng, WeightedIndexRejectsNegative) {
  Rng rng(23);
  std::vector<double> weights{1.0, -0.5};
  EXPECT_THROW(rng.weighted_index(weights), std::logic_error);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(24);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, HashLabelStable) {
  EXPECT_EQ(hash_label("cloudfog"), hash_label("cloudfog"));
  EXPECT_NE(hash_label("cloudfog"), hash_label("cloudfoh"));
  EXPECT_NE(hash_label(""), hash_label("a"));
}

TEST(Rng, Splitmix64Advances) {
  std::uint64_t s = 1;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace cloudfog::util
