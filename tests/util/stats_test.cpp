#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace cloudfog::util {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  RunningStats a, b, combined;
  for (double x : {1.0, 2.0, 3.0}) {
    a.add(x);
    combined.add(x);
  }
  for (double x : {10.0, 20.0}) {
    b.add(x);
    combined.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, empty;
  a.add(5.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 5.0);
}

TEST(RunningStats, Reset) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(SampleSet, PercentileInterpolates) {
  SampleSet s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(25.0), 17.5);
}

TEST(SampleSet, SingleElement) {
  SampleSet s;
  s.add(7.0);
  EXPECT_EQ(s.percentile(0.0), 7.0);
  EXPECT_EQ(s.percentile(50.0), 7.0);
  EXPECT_EQ(s.percentile(100.0), 7.0);
}

TEST(SampleSet, RejectsEmptyQueries) {
  SampleSet s;
  EXPECT_THROW(s.percentile(50.0), std::logic_error);
  EXPECT_THROW(s.min(), std::logic_error);
  EXPECT_THROW(s.max(), std::logic_error);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(SampleSet, RejectsOutOfRangePercentile) {
  SampleSet s;
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1.0), std::logic_error);
  EXPECT_THROW(s.percentile(101.0), std::logic_error);
}

TEST(SampleSet, FractionAtMost) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.fraction_at_most(3.0), 0.6);
  EXPECT_DOUBLE_EQ(s.fraction_at_most(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.fraction_at_most(5.0), 1.0);
  EXPECT_DOUBLE_EQ(s.fraction_at_most(2.5), 0.4);
}

TEST(SampleSet, AddAfterQueryKeepsSorted) {
  SampleSet s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_EQ(s.min(), 1.0);
  s.add(0.5);
  EXPECT_EQ(s.min(), 0.5);
  EXPECT_EQ(s.max(), 3.0);
}

TEST(Histogram, BucketBoundaries) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bucket_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);   // bucket 0
  h.add(2.0);   // bucket 1
  h.add(-5.0);  // clamps to bucket 0
  h.add(99.0);  // clamps to bucket 4
  h.add(10.0);  // hi edge clamps to bucket 4
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 2u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, RejectsEmptyRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 3), std::logic_error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::logic_error);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0);
  h.add(1.5);
  h.add(3.0);
  const std::string render = h.render(10);
  EXPECT_NE(render.find("2"), std::string::npos);
  EXPECT_NE(render.find("#"), std::string::npos);
}

TEST(TimeBucketSeries, MeansPerBucket) {
  TimeBucketSeries ts(10.0);
  ts.add(1.0, 4.0);
  ts.add(9.0, 6.0);
  ts.add(15.0, 10.0);
  ASSERT_EQ(ts.bucket_count(), 2u);
  EXPECT_DOUBLE_EQ(ts.bucket_mean(0), 5.0);
  EXPECT_DOUBLE_EQ(ts.bucket_sum(0), 10.0);
  EXPECT_EQ(ts.bucket_samples(0), 2u);
  EXPECT_DOUBLE_EQ(ts.bucket_mean(1), 10.0);
}

TEST(TimeBucketSeries, EmptyBucketMeanIsZero) {
  TimeBucketSeries ts(1.0);
  ts.add(5.5, 3.0);
  EXPECT_EQ(ts.bucket_count(), 6u);
  EXPECT_DOUBLE_EQ(ts.bucket_mean(0), 0.0);
  EXPECT_EQ(ts.bucket_samples(0), 0u);
}

TEST(TimeBucketSeries, RejectsBadInputs) {
  EXPECT_THROW(TimeBucketSeries(0.0), std::logic_error);
  TimeBucketSeries ts(1.0);
  EXPECT_THROW(ts.add(-1.0, 1.0), std::logic_error);
  EXPECT_THROW(ts.bucket_mean(0), std::logic_error);
}

}  // namespace
}  // namespace cloudfog::util
