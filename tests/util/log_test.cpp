#include "util/log.h"

#include <gtest/gtest.h>

namespace cloudfog::util {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kWarn); }
};

TEST_F(LogTest, LevelRoundTrip) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LogTest, FilteredMessageDoesNotCrash) {
  set_log_level(LogLevel::kOff);
  CF_LOG_ERROR << "suppressed " << 42;
  CF_LOG_DEBUG << "also suppressed";
}

TEST_F(LogTest, EmittedMessageGoesToStderr) {
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  CF_LOG_INFO << "hello " << 7;
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("hello 7"), std::string::npos);
  EXPECT_NE(err.find("INFO"), std::string::npos);
}

TEST_F(LogTest, BelowThresholdSuppressed) {
  set_log_level(LogLevel::kWarn);
  ::testing::internal::CaptureStderr();
  CF_LOG_INFO << "should not appear";
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

}  // namespace
}  // namespace cloudfog::util
