#include "util/check.h"

#include <functional>
#include <stdexcept>
#include <string>
#include <thread>

#include <gtest/gtest.h>

namespace cloudfog {
namespace {

std::string message_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const std::logic_error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected std::logic_error";
  return {};
}

TEST(CheckTest, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(CF_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(CF_CHECK_MSG(true, "unused"));
}

TEST(CheckTest, FailureThrowsLogicErrorWithExprFileLine) {
  const std::string what = message_of([] { CF_CHECK(2 < 1); });
  EXPECT_NE(what.find("CHECK failed"), std::string::npos);
  EXPECT_NE(what.find("2 < 1"), std::string::npos);
  EXPECT_NE(what.find("check_test.cpp"), std::string::npos);
  EXPECT_NE(what.find(':'), std::string::npos);  // file:line separator
}

TEST(CheckTest, MsgFormIncludesTheMessage) {
  const std::string what =
      message_of([] { CF_CHECK_MSG(false, "buffer drained twice"); });
  EXPECT_NE(what.find("buffer drained twice"), std::string::npos);
}

TEST(CheckTest, ComparisonMacrosPrintBothOperandValues) {
  const int lhs = 41;
  const int rhs = 42;
  const std::string what = message_of([&] { CF_CHECK_GE(lhs, rhs); });
  EXPECT_NE(what.find("lhs >= rhs"), std::string::npos);
  EXPECT_NE(what.find("41"), std::string::npos);
  EXPECT_NE(what.find("42"), std::string::npos);

  const double when = 12.5;
  const double now = 99.25;
  const std::string fp = message_of([&] { CF_CHECK_GT(when, now); });
  EXPECT_NE(fp.find("12.5"), std::string::npos);
  EXPECT_NE(fp.find("99.25"), std::string::npos);
}

TEST(CheckTest, ComparisonMacrosCoverAllOperators) {
  EXPECT_NO_THROW(CF_CHECK_EQ(3, 3));
  EXPECT_NO_THROW(CF_CHECK_NE(3, 4));
  EXPECT_NO_THROW(CF_CHECK_GE(4, 4));
  EXPECT_NO_THROW(CF_CHECK_GT(5, 4));
  EXPECT_NO_THROW(CF_CHECK_LE(4, 4));
  EXPECT_NO_THROW(CF_CHECK_LT(4, 5));
  EXPECT_THROW(CF_CHECK_EQ(3, 4), std::logic_error);
  EXPECT_THROW(CF_CHECK_NE(3, 3), std::logic_error);
  EXPECT_THROW(CF_CHECK_GE(3, 4), std::logic_error);
  EXPECT_THROW(CF_CHECK_GT(4, 4), std::logic_error);
  EXPECT_THROW(CF_CHECK_LE(4, 3), std::logic_error);
  EXPECT_THROW(CF_CHECK_LT(4, 4), std::logic_error);
}

TEST(CheckTest, ComparisonMacrosEvaluateOperandsOnce) {
  int left = 0;
  int right = 10;
  CF_CHECK_LT(++left, right);
  EXPECT_EQ(left, 1);
}

TEST(CheckTest, DcheckCompilesOutUnderNdebug) {
  int evaluations = 0;
  CF_DCHECK(++evaluations > 0);
#ifdef NDEBUG
  EXPECT_EQ(evaluations, 0) << "CF_DCHECK must not evaluate in release";
  EXPECT_NO_THROW(CF_DCHECK(false));
  EXPECT_NO_THROW(CF_DCHECK_EQ(1, 2));
#else
  EXPECT_EQ(evaluations, 1);
  EXPECT_THROW(CF_DCHECK(false), std::logic_error);
  EXPECT_THROW(CF_DCHECK_EQ(1, 2), std::logic_error);
#endif
}

TEST(CheckTest, InvariantThrowsAndCountsViolations) {
  const std::uint64_t before = util::invariant_violations();
  EXPECT_NO_THROW(CF_INVARIANT(true, "never fires"));
  EXPECT_EQ(util::invariant_violations(), before);

  const std::string what =
      message_of([] { CF_INVARIANT(1 > 2, "ordering violated"); });
  EXPECT_NE(what.find("ordering violated"), std::string::npos);
  EXPECT_NE(what.find("1 > 2"), std::string::npos);
  EXPECT_EQ(util::invariant_violations(), before + 1);
}

TEST(CheckTest, FailureOnMainThreadOmitsThreadId) {
  // gtest runs tests on the process's main thread, the same thread that
  // ran static initialisation — so no "[thread ...]" suffix here.
  const std::string what = message_of([] { CF_CHECK(1 > 2); });
  EXPECT_EQ(what.find("[thread "), std::string::npos);
}

TEST(CheckTest, FailureOffMainThreadNamesTheThread) {
  // A parallel sweep surfaces CF_CHECK failures from worker threads; the
  // thread id in the message is what ties a failure report to the worker
  // (and distinguishes it from a main-thread failure with the same text).
  std::string what;
  // Raw thread on purpose: off-main-thread attribution is the property
  // under test, and exec::RunExecutor would swallow the exception first.
  std::thread worker([&what] {  // lint:allow(raw-thread)
    try {
      CF_CHECK_MSG(false, "worker-side failure");
    } catch (const std::logic_error& e) {
      what = e.what();
    }
  });
  worker.join();
  EXPECT_NE(what.find("worker-side failure"), std::string::npos);
  EXPECT_NE(what.find("[thread "), std::string::npos);
}

TEST(CheckTest, InvariantAuditHookObservesFailures) {
  static std::string seen_what;
  static std::string seen_detail;
  seen_what.clear();
  seen_detail.clear();
  const auto previous = util::set_invariant_audit_hook(
      [](const char* what, const std::string& detail) {
        seen_what = what;
        seen_detail = detail;
      });

  EXPECT_THROW(CF_INVARIANT(false, "capacity conservation"), std::logic_error);
  EXPECT_EQ(seen_what, "capacity conservation");
  EXPECT_NE(seen_detail.find("check_test.cpp"), std::string::npos);

  util::set_invariant_audit_hook(previous);
  // With the hook removed, failures still throw but no longer notify.
  seen_what.clear();
  EXPECT_THROW(CF_INVARIANT(false, "after uninstall"), std::logic_error);
  EXPECT_TRUE(seen_what.empty());
}

}  // namespace
}  // namespace cloudfog
