// util::small_function (DESIGN.md §14): the fixed-capacity, inline-storage
// callable the packet hot path uses instead of std::function. The suite
// pins down the semantics the engine relies on — move-only transfer that
// empties the source, nullptr clearing, non-trivial capture destruction,
// the trivial memcpy fast path, and the self-recycle discipline that lets
// a target destroy or re-assign the small_function invoking it.
#include "util/small_function.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

namespace cloudfog::util {
namespace {

TEST(SmallFunction, DefaultAndNullptrAreEmpty) {
  small_function<int()> empty;
  EXPECT_FALSE(static_cast<bool>(empty));
  small_function<int()> null = nullptr;
  EXPECT_FALSE(static_cast<bool>(null));
}

TEST(SmallFunction, InvokesTargetWithArgumentsAndResult) {
  small_function<int(int, int)> add = [](int a, int b) { return a + b; };
  ASSERT_TRUE(static_cast<bool>(add));
  EXPECT_EQ(add(2, 3), 5);
}

TEST(SmallFunction, MoveTransfersTargetAndEmptiesSource) {
  int calls = 0;
  small_function<void()> f = [&calls] { ++calls; };
  small_function<void()> g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(g));
  g();
  EXPECT_EQ(calls, 1);
}

TEST(SmallFunction, MoveAssignmentReplacesExistingTarget) {
  int first = 0;
  int second = 0;
  small_function<void()> f = [&first] { ++first; };
  f = small_function<void()>([&second] { ++second; });
  f();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(SmallFunction, NullptrAssignmentClears) {
  small_function<void()> f = [] {};
  ASSERT_TRUE(static_cast<bool>(f));
  f = nullptr;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(SmallFunction, NonTrivialCaptureIsDestroyedExactlyOnce) {
  // A shared_ptr capture takes the managed (manage_ != nullptr) path:
  // destruction must release the capture, and a moved-from holder must not
  // double-release it.
  auto token = std::make_shared<int>(42);
  {
    small_function<int()> f = [token] { return *token; };
    EXPECT_EQ(token.use_count(), 2);
    small_function<int()> g = std::move(f);
    EXPECT_EQ(token.use_count(), 2);  // relocated, not duplicated
    EXPECT_EQ(g(), 42);
  }
  EXPECT_EQ(token.use_count(), 1);  // both holders gone, capture released
}

TEST(SmallFunction, TrivialCaptureSurvivesMoveChain) {
  // [value] captures of trivial types take the memcpy fast path; a chain of
  // moves must preserve the payload bit-for-bit.
  small_function<int()> a = [x = 7, y = 35] { return x + y; };
  small_function<int()> b = std::move(a);
  small_function<int()> c;
  c = std::move(b);
  EXPECT_EQ(c(), 42);
}

TEST(SmallFunction, MutableLambdaKeepsStateAcrossCalls) {
  small_function<int()> counter = [n = 0]() mutable { return ++n; };
  EXPECT_EQ(counter(), 1);
  EXPECT_EQ(counter(), 2);
  EXPECT_EQ(counter(), 3);
}

TEST(SmallFunction, SwapExchangesTargets) {
  small_function<int()> one = [] { return 1; };
  small_function<int()> two = [] { return 2; };
  one.swap(two);
  EXPECT_EQ(one(), 2);
  EXPECT_EQ(two(), 1);
  small_function<int()> empty;
  one.swap(empty);
  EXPECT_FALSE(static_cast<bool>(one));
  EXPECT_EQ(empty(), 2);
}

TEST(SmallFunction, TargetMayReassignItsOwnHolderMidInvocation) {
  // The slab engine's self-cancel discipline: a fired event callback may
  // schedule_* into its own recycled slot, re-assigning the small_function
  // that is currently executing. invoke() must have read everything it
  // needs before entering the target.
  small_function<int()> f;
  int replaced_calls = 0;
  f = [&f, &replaced_calls] {
    f = [&replaced_calls] {
      ++replaced_calls;
      return 2;
    };
    return 1;
  };
  EXPECT_EQ(f(), 1);
  EXPECT_EQ(f(), 2);
  EXPECT_EQ(replaced_calls, 1);
}

TEST(SmallFunction, TargetMayDestroyItsOwnHolderMidInvocation) {
  auto holder = std::make_unique<small_function<int()>>();
  *holder = [&holder] {
    holder.reset();  // destroys the small_function that is executing
    return 9;
  };
  EXPECT_EQ((*holder)(), 9);
  EXPECT_EQ(holder, nullptr);
}

TEST(SmallFunction, CapacityAdmitsCapturesUpToTheBudget) {
  // Exactly at the default budget: six 8-byte values = 48 bytes. One more
  // would trip the construction-site static_assert (a compile error, which
  // is the point of the design — not testable at runtime).
  static_assert(kSmallFunctionDefaultCapacity == 48);
  double a = 1, b = 2, c = 3, d = 4, e = 5, f = 6;
  small_function<double()> g = [a, b, c, d, e, f] {
    return a + b + c + d + e + f;
  };
  EXPECT_DOUBLE_EQ(g(), 21.0);
  // A larger capacity admits larger captures at the same signature.
  small_function<double(), 96> big = [a, b, c, d, e, f, x = a, y = b, z = c] {
    return a + b + c + d + e + f + x + y + z;
  };
  EXPECT_DOUBLE_EQ(big(), 27.0);
}

TEST(SmallFunction, SelfMoveAssignIsANoOp) {
  small_function<int()> f = [] { return 5; };
  small_function<int()>& alias = f;
  f = std::move(alias);
  EXPECT_EQ(f(), 5);
}

TEST(SmallFunction, FunctionPointerTarget) {
  struct Local {
    static int twice(int x) { return 2 * x; }
  };
  small_function<int(int)> f = &Local::twice;
  EXPECT_EQ(f(21), 42);
}

}  // namespace
}  // namespace cloudfog::util
