#include "world/virtual_world.h"

#include <gtest/gtest.h>

#include <set>

namespace cloudfog::world {
namespace {

WorldConfig small_config() {
  WorldConfig c;
  c.width = 1'000.0;
  c.height = 500.0;
  c.region_size = 100.0;
  return c;
}

TEST(VirtualWorld, RegionGridDimensions) {
  VirtualWorld w(small_config());
  EXPECT_EQ(w.regions_x(), 10u);
  EXPECT_EQ(w.regions_y(), 5u);
  EXPECT_EQ(w.region_count(), 50u);
}

TEST(VirtualWorld, SpawnAndDespawn) {
  VirtualWorld w(small_config());
  util::Rng rng(1);
  const AvatarId a = w.spawn(rng);
  const AvatarId b = w.spawn(rng);
  EXPECT_NE(a, b);
  EXPECT_EQ(w.population(), 2u);
  EXPECT_TRUE(w.exists(a));
  w.despawn(a);
  EXPECT_FALSE(w.exists(a));
  EXPECT_EQ(w.population(), 1u);
  EXPECT_THROW(w.despawn(a), std::logic_error);
}

TEST(VirtualWorld, SpawnAtClampsToMap) {
  VirtualWorld w(small_config());
  const AvatarId a = w.spawn_at({-50.0, 9'999.0});
  EXPECT_DOUBLE_EQ(w.avatar(a).position.x, 0.0);
  EXPECT_DOUBLE_EQ(w.avatar(a).position.y, 500.0);
}

TEST(VirtualWorld, RegionOfCorners) {
  VirtualWorld w(small_config());
  EXPECT_EQ(w.region_of({0.0, 0.0}), 0u);
  EXPECT_EQ(w.region_of({999.0, 0.0}), 9u);
  EXPECT_EQ(w.region_of({0.0, 499.0}), 40u);
  EXPECT_EQ(w.region_of({999.0, 499.0}), 49u);
  // Exact upper edges clamp into the last cell.
  EXPECT_EQ(w.region_of({1'000.0, 500.0}), 49u);
}

TEST(VirtualWorld, NeighborhoodInterior) {
  VirtualWorld w(small_config());
  const RegionId center = w.region_of({450.0, 250.0});  // (4, 2) -> 24
  const auto hood = w.neighborhood(center, 1);
  EXPECT_EQ(hood.size(), 9u);
  std::set<RegionId> unique(hood.begin(), hood.end());
  EXPECT_TRUE(unique.contains(center));
}

TEST(VirtualWorld, NeighborhoodCornerTruncated) {
  VirtualWorld w(small_config());
  EXPECT_EQ(w.neighborhood(0, 1).size(), 4u);   // corner: 2x2
  EXPECT_EQ(w.neighborhood(0, 0).size(), 1u);   // just itself
}

TEST(VirtualWorld, MoveActionAdvancesBySpeed) {
  VirtualWorld w(small_config());
  util::Rng rng(2);
  const AvatarId a = w.spawn_at({100.0, 100.0});
  w.submit({a, ActionType::kMove, 1.0, 0.0});
  const TickDelta delta = w.tick(rng);
  ASSERT_EQ(delta.changes.size(), 1u);
  EXPECT_DOUBLE_EQ(w.avatar(a).position.x, 112.0);  // speed 12 along +x
  EXPECT_DOUBLE_EQ(w.avatar(a).position.y, 100.0);
}

TEST(VirtualWorld, MoveDirectionIsNormalised) {
  VirtualWorld w(small_config());
  util::Rng rng(2);
  const AvatarId a = w.spawn_at({100.0, 100.0});
  w.submit({a, ActionType::kMove, 30.0, 40.0});  // 3-4-5 direction
  (void)w.tick(rng);
  EXPECT_NEAR(w.avatar(a).position.x, 100.0 + 12.0 * 0.6, 1e-9);
  EXPECT_NEAR(w.avatar(a).position.y, 100.0 + 12.0 * 0.8, 1e-9);
}

TEST(VirtualWorld, MoveClampedAtMapEdge) {
  VirtualWorld w(small_config());
  util::Rng rng(2);
  const AvatarId a = w.spawn_at({995.0, 100.0});
  w.submit({a, ActionType::kMove, 1.0, 0.0});
  (void)w.tick(rng);
  EXPECT_DOUBLE_EQ(w.avatar(a).position.x, 1'000.0);
}

TEST(VirtualWorld, StrikeDamagesNearestInRange) {
  VirtualWorld w(small_config());
  util::Rng rng(3);
  const AvatarId attacker = w.spawn_at({100.0, 100.0});
  const AvatarId near = w.spawn_at({110.0, 100.0});
  const AvatarId far = w.spawn_at({125.0, 100.0});
  w.submit({attacker, ActionType::kStrike, 0.0, 0.0});
  const TickDelta delta = w.tick(rng);
  EXPECT_DOUBLE_EQ(w.avatar(near).health, 85.0);
  EXPECT_DOUBLE_EQ(w.avatar(far).health, 100.0);
  ASSERT_EQ(delta.changes.size(), 1u);
  EXPECT_EQ(delta.changes[0].id, near);
}

TEST(VirtualWorld, StrikeOutOfRangeDoesNothing) {
  VirtualWorld w(small_config());
  util::Rng rng(3);
  const AvatarId attacker = w.spawn_at({100.0, 100.0});
  (void)w.spawn_at({200.0, 100.0});  // beyond the 30-unit range
  w.submit({attacker, ActionType::kStrike, 0.0, 0.0});
  const TickDelta delta = w.tick(rng);
  EXPECT_TRUE(delta.changes.empty());
}

TEST(VirtualWorld, LethalStrikeRespawnsVictim) {
  auto config = small_config();
  config.strike_damage = 150.0;  // one-shot
  VirtualWorld w(config);
  util::Rng rng(4);
  const AvatarId attacker = w.spawn_at({100.0, 100.0});
  const AvatarId victim = w.spawn_at({105.0, 100.0});
  w.submit({attacker, ActionType::kStrike, 0.0, 0.0});
  (void)w.tick(rng);
  EXPECT_DOUBLE_EQ(w.avatar(victim).health, 100.0);  // respawned
  // Extremely unlikely to respawn exactly in place.
  EXPECT_TRUE(w.avatar(victim).position.x != 105.0 ||
              w.avatar(victim).position.y != 100.0);
}

TEST(VirtualWorld, DeltaOnlyContainsChangedAvatars) {
  VirtualWorld w(small_config());
  util::Rng rng(5);
  const AvatarId mover = w.spawn_at({100.0, 100.0});
  (void)w.spawn_at({800.0, 400.0});  // idle bystander
  w.submit({mover, ActionType::kMove, 0.0, 1.0});
  const TickDelta delta = w.tick(rng);
  ASSERT_EQ(delta.changes.size(), 1u);
  EXPECT_EQ(delta.changes[0].id, mover);
  EXPECT_EQ(delta.changes[0].region, w.region_of(w.avatar(mover).position));
}

TEST(VirtualWorld, DeltaSortedAndSized) {
  VirtualWorld w(small_config());
  util::Rng rng(6);
  std::vector<AvatarId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(w.spawn(rng));
  for (AvatarId id : ids) w.submit({id, ActionType::kEmote, 0.0, 0.0});
  const TickDelta delta = w.tick(rng);
  ASSERT_EQ(delta.changes.size(), 10u);
  for (std::size_t i = 1; i < delta.changes.size(); ++i) {
    EXPECT_LT(delta.changes[i - 1].id, delta.changes[i].id);
  }
  // 16 bytes header + 10 * 24 bytes = 256 bytes = 2.048 kbit.
  EXPECT_NEAR(delta.size_kbit(), 2.048, 1e-9);
}

TEST(VirtualWorld, ActionsFromDespawnedActorsIgnored) {
  VirtualWorld w(small_config());
  util::Rng rng(7);
  const AvatarId a = w.spawn(rng);
  w.submit({a, ActionType::kMove, 1.0, 0.0});
  w.despawn(a);
  const TickDelta delta = w.tick(rng);  // must not crash
  EXPECT_TRUE(delta.changes.empty());
}

TEST(VirtualWorld, SubmitForUnknownActorRejected) {
  VirtualWorld w(small_config());
  EXPECT_THROW(w.submit({42, ActionType::kMove, 1.0, 0.0}), std::logic_error);
}

TEST(VirtualWorld, TickCounterAdvances) {
  VirtualWorld w(small_config());
  util::Rng rng(8);
  EXPECT_EQ(w.tick(rng).tick, 1u);
  EXPECT_EQ(w.tick(rng).tick, 2u);
  EXPECT_EQ(w.ticks(), 2u);
}

TEST(VirtualWorld, DeterministicUnderSameSeed) {
  auto run = [] {
    VirtualWorld w(small_config());
    util::Rng rng(99);
    std::vector<AvatarId> ids;
    for (int i = 0; i < 20; ++i) ids.push_back(w.spawn(rng));
    std::vector<Position> finals;
    for (int t = 0; t < 10; ++t) {
      for (AvatarId id : ids)
        w.submit({id, ActionType::kMove, rng.uniform(-1.0, 1.0),
                  rng.uniform(-1.0, 1.0)});
      (void)w.tick(rng);
    }
    for (AvatarId id : ids) finals.push_back(w.avatar(id).position);
    return finals;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].x, b[i].x);
    EXPECT_DOUBLE_EQ(a[i].y, b[i].y);
  }
}

}  // namespace
}  // namespace cloudfog::world
