#include "world/partition.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cloudfog::world {
namespace {

WorldConfig config() {
  WorldConfig c;
  c.width = 1'000.0;
  c.height = 1'000.0;
  return c;
}

/// A heavily clustered population: 80% in one hotspot corner, the rest
/// uniform — the distribution that defeats static grids.
std::vector<Position> clustered_population(std::size_t n, util::Rng& rng) {
  std::vector<Position> out;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.bernoulli(0.8)) {
      out.push_back({rng.uniform(0.0, 150.0), rng.uniform(0.0, 150.0)});
    } else {
      out.push_back({rng.uniform(0.0, 1'000.0), rng.uniform(0.0, 1'000.0)});
    }
  }
  return out;
}

TEST(GridPartition, MapsCornersToDistinctServers) {
  GridPartition grid(config(), 2, 2);
  EXPECT_EQ(grid.servers(), 4u);
  EXPECT_EQ(grid.server_of({10.0, 10.0}), 0u);
  EXPECT_EQ(grid.server_of({990.0, 10.0}), 1u);
  EXPECT_EQ(grid.server_of({10.0, 990.0}), 2u);
  EXPECT_EQ(grid.server_of({990.0, 990.0}), 3u);
}

TEST(GridPartition, OutOfMapPositionsClamp) {
  GridPartition grid(config(), 2, 2);
  EXPECT_EQ(grid.server_of({-10.0, -10.0}), 0u);
  EXPECT_EQ(grid.server_of({5'000.0, 5'000.0}), 3u);
}

TEST(GridPartition, UniformPopulationBalances) {
  util::Rng rng(1);
  std::vector<Position> avatars;
  for (int i = 0; i < 4'000; ++i) {
    avatars.push_back({rng.uniform(0.0, 1'000.0), rng.uniform(0.0, 1'000.0)});
  }
  GridPartition grid(config(), 2, 2);
  EXPECT_LT(grid.stats(avatars).imbalance(), 1.1);
}

TEST(GridPartition, ClusteredPopulationImbalanced) {
  util::Rng rng(2);
  const auto avatars = clustered_population(4'000, rng);
  GridPartition grid(config(), 2, 2);
  // ~85% of the population lands in the hotspot cell: imbalance ~3.4x.
  EXPECT_GT(grid.stats(avatars).imbalance(), 2.5);
}

TEST(KdPartition, LeafCountIsPowerOfTwo) {
  util::Rng rng(3);
  const auto avatars = clustered_population(1'000, rng);
  for (int depth : {0, 1, 2, 3, 4}) {
    KdPartition kd(avatars, depth);
    EXPECT_EQ(kd.servers(), static_cast<std::size_t>(1) << depth);
  }
}

TEST(KdPartition, BalancesClusteredPopulation) {
  // The Bezerra et al. result the paper cites: median splits keep per-server
  // load near-uniform even under heavy clustering.
  util::Rng rng(4);
  const auto avatars = clustered_population(4'000, rng);
  KdPartition kd(avatars, 2);  // 4 servers, same as the grid test
  const auto stats = kd.stats(avatars);
  EXPECT_LT(stats.imbalance(), 1.1);
}

TEST(KdPartition, BeatsGridOnClusteredLoad) {
  util::Rng rng(5);
  const auto avatars = clustered_population(4'000, rng);
  GridPartition grid(config(), 2, 2);
  KdPartition kd(avatars, 2);
  EXPECT_LT(kd.stats(avatars).imbalance(), grid.stats(avatars).imbalance() / 2.0);
}

TEST(KdPartition, EveryPositionMapsToAServer) {
  util::Rng rng(6);
  const auto avatars = clustered_population(500, rng);
  KdPartition kd(avatars, 3);
  for (int i = 0; i < 1'000; ++i) {
    const Position p{rng.uniform(-100.0, 1'100.0), rng.uniform(-100.0, 1'100.0)};
    EXPECT_LT(kd.server_of(p), kd.servers());
  }
}

TEST(KdPartition, RebuildAdaptsToMigration) {
  // Population migrates to the opposite corner; a rebuilt tree rebalances.
  util::Rng rng(7);
  std::vector<Position> before, after;
  for (int i = 0; i < 2'000; ++i) {
    before.push_back({rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)});
    after.push_back({rng.uniform(800.0, 1'000.0), rng.uniform(800.0, 1'000.0)});
  }
  KdPartition stale(before, 2);
  EXPECT_GT(stale.stats(after).imbalance(), 2.0);  // everything in one leaf
  KdPartition rebuilt(after, 2);
  EXPECT_LT(rebuilt.stats(after).imbalance(), 1.1);
}

TEST(KdPartition, SingleAvatarDegenerate) {
  KdPartition kd({{10.0, 10.0}}, 2);
  EXPECT_EQ(kd.servers(), 4u);
  EXPECT_LT(kd.server_of({10.0, 10.0}), 4u);
}

TEST(KdPartition, RejectsBadInputs) {
  EXPECT_THROW(KdPartition({}, 2), std::logic_error);
  EXPECT_THROW(KdPartition({{1.0, 1.0}}, -1), std::logic_error);
}

TEST(PartitionStats, ImbalanceMath) {
  PartitionStats stats;
  stats.load = {10, 10, 10, 30};
  EXPECT_DOUBLE_EQ(stats.imbalance(), 2.0);  // max 30 / mean 15
  EXPECT_EQ(stats.max_load(), 30u);
  PartitionStats empty;
  EXPECT_DOUBLE_EQ(empty.imbalance(), 1.0);
}

}  // namespace
}  // namespace cloudfog::world
