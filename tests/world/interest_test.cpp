#include "world/interest.h"

#include <gtest/gtest.h>

namespace cloudfog::world {
namespace {

WorldConfig config() {
  WorldConfig c;
  c.width = 1'000.0;
  c.height = 1'000.0;
  c.region_size = 100.0;  // 10x10 regions
  return c;
}

TEST(Interest, SubscriptionCoversAvatarNeighborhood) {
  VirtualWorld w(config());
  InterestManager interest(w, /*halo=*/1);
  const AvatarId a = w.spawn_at({450.0, 450.0});  // interior region
  interest.track(7, a);
  EXPECT_EQ(interest.subscribed_regions(7), 9u);
  EXPECT_TRUE(interest.subscription(7)[w.region_of({450.0, 450.0})]);
}

TEST(Interest, HaloZeroIsSingleRegion) {
  VirtualWorld w(config());
  InterestManager interest(w, 0);
  const AvatarId a = w.spawn_at({50.0, 50.0});
  interest.track(7, a);
  EXPECT_EQ(interest.subscribed_regions(7), 1u);
}

TEST(Interest, MultipleAvatarsUnionSubscriptions) {
  VirtualWorld w(config());
  InterestManager interest(w, 1);
  interest.track(7, w.spawn_at({150.0, 150.0}));
  interest.track(7, w.spawn_at({850.0, 850.0}));
  EXPECT_EQ(interest.subscribed_regions(7), 18u);  // two disjoint 3x3 blocks
}

TEST(Interest, OverlappingAvatarsDoNotDoubleCount) {
  VirtualWorld w(config());
  InterestManager interest(w, 1);
  interest.track(7, w.spawn_at({450.0, 450.0}));
  interest.track(7, w.spawn_at({460.0, 455.0}));  // same region
  EXPECT_EQ(interest.subscribed_regions(7), 9u);
}

TEST(Interest, UntrackShrinksSubscription) {
  VirtualWorld w(config());
  InterestManager interest(w, 1);
  const AvatarId a = w.spawn_at({150.0, 150.0});
  const AvatarId b = w.spawn_at({850.0, 850.0});
  interest.track(7, a);
  interest.track(7, b);
  interest.untrack(7, b);
  EXPECT_EQ(interest.subscribed_regions(7), 9u);
  interest.untrack(7, a);
  EXPECT_EQ(interest.supernodes(), 0u);
  EXPECT_THROW(interest.subscription(7), std::logic_error);
}

TEST(Interest, RefreshFollowsMovingAvatar) {
  VirtualWorld w(config());
  util::Rng rng(1);
  InterestManager interest(w, 0);
  const AvatarId a = w.spawn_at({50.0, 50.0});
  interest.track(7, a);
  const RegionId before = w.region_of({50.0, 50.0});
  // March the avatar to the east across several regions.
  for (int i = 0; i < 30; ++i) {
    w.submit({a, ActionType::kMove, 1.0, 0.0});
    (void)w.tick(rng);
  }
  interest.refresh();
  const RegionId after = w.region_of(w.avatar(a).position);
  EXPECT_NE(before, after);
  EXPECT_TRUE(interest.subscription(7)[after]);
  EXPECT_FALSE(interest.subscription(7)[before]);
}

TEST(Interest, UpdateForFiltersDelta) {
  VirtualWorld w(config());
  util::Rng rng(2);
  InterestManager interest(w, 0);
  const AvatarId mine = w.spawn_at({450.0, 450.0});
  const AvatarId distant = w.spawn_at({50.0, 950.0});
  interest.track(7, mine);
  w.submit({mine, ActionType::kEmote, 0.0, 0.0});
  w.submit({distant, ActionType::kEmote, 0.0, 0.0});
  const TickDelta delta = w.tick(rng);
  ASSERT_EQ(delta.changes.size(), 2u);
  const auto filtered = interest.update_for(7, delta);
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered[0].id, mine);
}

TEST(Interest, FeedSizesShowFilteringSaving) {
  VirtualWorld w(config());
  util::Rng rng(3);
  InterestManager interest(w, 1);
  // 5 supernodes, each watching one corner-ish avatar; 100 other avatars
  // spread over the map emote every tick.
  for (NodeId sn = 0; sn < 5; ++sn) {
    interest.track(sn, w.spawn(rng));
  }
  std::vector<AvatarId> crowd;
  for (int i = 0; i < 100; ++i) crowd.push_back(w.spawn(rng));
  for (AvatarId id : crowd) w.submit({id, ActionType::kEmote, 0.0, 0.0});
  const TickDelta delta = w.tick(rng);
  const auto sizes = interest.feed_sizes(delta);
  EXPECT_GT(sizes.broadcast_kbit, 0.0);
  EXPECT_LT(sizes.filtered_kbit, sizes.broadcast_kbit);
  EXPECT_GT(sizes.saving(), 0.5);  // AoI filtering is the point
}

TEST(Interest, TrackValidation) {
  VirtualWorld w(config());
  InterestManager interest(w, 1);
  EXPECT_THROW(interest.track(7, 999), std::logic_error);
  const AvatarId a = w.spawn_at({100.0, 100.0});
  interest.track(7, a);
  EXPECT_THROW(interest.track(7, a), std::logic_error);
  EXPECT_THROW(interest.untrack(8, a), std::logic_error);
}

}  // namespace
}  // namespace cloudfog::world
