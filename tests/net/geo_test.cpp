#include "net/geo.h"

#include <gtest/gtest.h>

namespace cloudfog::net {
namespace {

TEST(Haversine, ZeroForIdenticalPoints) {
  const GeoPoint p{40.0, -75.0};
  EXPECT_DOUBLE_EQ(haversine_km(p, p), 0.0);
}

TEST(Haversine, Symmetric) {
  const GeoPoint a{40.7128, -74.0060};  // NYC
  const GeoPoint b{34.0522, -118.2437}; // LA
  EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
}

TEST(Haversine, NycToLaKnownDistance) {
  const GeoPoint nyc{40.7128, -74.0060};
  const GeoPoint la{34.0522, -118.2437};
  // Great-circle NYC-LA is about 3936 km.
  EXPECT_NEAR(haversine_km(nyc, la), 3936.0, 40.0);
}

TEST(Haversine, ChicagoToDallasKnownDistance) {
  const GeoPoint chi{41.8781, -87.6298};
  const GeoPoint dal{32.7767, -96.7970};
  EXPECT_NEAR(haversine_km(chi, dal), 1290.0, 30.0);
}

TEST(Haversine, OneDegreeLatitudeIsAbout111Km) {
  const GeoPoint a{40.0, -100.0};
  const GeoPoint b{41.0, -100.0};
  EXPECT_NEAR(haversine_km(a, b), 111.2, 1.0);
}

TEST(MetroTable, NonEmptyWithPositiveWeights) {
  const auto& metros = us_metros();
  EXPECT_GE(metros.size(), 50u);
  for (const auto& m : metros) {
    EXPECT_FALSE(m.name.empty());
    EXPECT_GT(m.population_millions, 0.0);
  }
}

TEST(MetroTable, CoordinatesInContinentalUs) {
  for (const auto& m : us_metros()) {
    EXPECT_GT(m.center.lat_deg, 24.0) << m.name;
    EXPECT_LT(m.center.lat_deg, 50.0) << m.name;
    EXPECT_GT(m.center.lon_deg, -125.0) << m.name;
    EXPECT_LT(m.center.lon_deg, -66.0) << m.name;
  }
}

TEST(MetroTable, SortedDescendingByPopulation) {
  const auto& metros = us_metros();
  for (std::size_t i = 1; i < metros.size(); ++i) {
    EXPECT_GE(metros[i - 1].population_millions, metros[i].population_millions);
  }
}

TEST(DatacenterSites, EnoughForTheCoverageSweep) {
  // The paper's Figure 5(a) sweeps up to 25 datacenters.
  EXPECT_GE(us_datacenter_sites().size(), 25u);
}

TEST(DatacenterSites, CoordinatesInContinentalUs) {
  for (const auto& s : us_datacenter_sites()) {
    EXPECT_GT(s.center.lat_deg, 24.0) << s.name;
    EXPECT_LT(s.center.lat_deg, 50.0) << s.name;
    EXPECT_GT(s.center.lon_deg, -125.0) << s.name;
    EXPECT_LT(s.center.lon_deg, -66.0) << s.name;
  }
}

TEST(DatacenterSites, FirstFiveSpanTheCountry) {
  // The default 5-datacenter deployment must include east and west coasts.
  const auto& sites = us_datacenter_sites();
  double min_lon = 0.0, max_lon = -180.0;
  for (std::size_t i = 0; i < 5; ++i) {
    min_lon = std::min(min_lon, sites[i].center.lon_deg);
    max_lon = std::max(max_lon, sites[i].center.lon_deg);
  }
  EXPECT_LT(min_lon, -115.0);  // a western site
  EXPECT_GT(max_lon, -90.0);   // an eastern site
}

TEST(PlanetLabCoords, PrincetonAndUclaDistinct) {
  const GeoPoint princeton = princeton_coords();
  const GeoPoint ucla = ucla_coords();
  EXPECT_NEAR(princeton.lat_deg, 40.36, 0.1);
  EXPECT_NEAR(ucla.lat_deg, 34.07, 0.1);
  // Cross-country pair, ~3,900 km apart.
  EXPECT_NEAR(haversine_km(princeton, ucla), 3930.0, 100.0);
}

}  // namespace
}  // namespace cloudfog::net
