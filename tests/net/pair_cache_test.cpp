// Exactness tests for the latency model's pair memo and the precomputed
// cos(lat) haversine path: memoization and precomputation must be invisible
// — every cached value bit-equal to a from-scratch computation.
#include <cmath>

#include <gtest/gtest.h>

#include "net/geo.h"
#include "net/latency_model.h"
#include "net/topology.h"
#include "util/rng.h"

namespace cloudfog::net {
namespace {

GeoPoint random_us_point(util::Rng& rng) {
  return GeoPoint{rng.uniform(25.0, 49.0), rng.uniform(-124.0, -67.0)};
}

TEST(PairCacheTest, HaversinePrecomputedOverloadIsBitIdentical) {
  util::Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const GeoPoint a = random_us_point(rng);
    const GeoPoint b = random_us_point(rng);
    const double direct = haversine_km(a, b);
    const double pre = haversine_km(a, cos_lat(a), b, cos_lat(b));
    EXPECT_EQ(direct, pre);
    // The memo normalizes argument order, so symmetry must hold bitwise.
    EXPECT_EQ(direct, haversine_km(b, a));
  }
}

TEST(PairCacheTest, PairBiasMemoMatchesUncachedAcross10kRandomPairs) {
  const LatencyModel model(LatencyParams::simulation_profile(42));
  util::Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    // Small id range on purpose: forces heavy cache-line aliasing and
    // eviction, the regime where a buggy memo would serve stale values.
    const auto a = static_cast<NodeId>(rng.uniform_int(0, 2'000));
    const auto b = static_cast<NodeId>(rng.uniform_int(0, 2'000));
    const double direct = model.pair_bias_uncached(a, b);
    EXPECT_EQ(model.pair_bias(a, b), direct);
    EXPECT_EQ(model.pair_bias(b, a), direct);  // unordered key
    EXPECT_EQ(model.pair_bias(a, b), direct);  // repeated (warm) query
  }
}

TEST(PairCacheTest, ExpectedOneWayMatchesFromScratchFormula) {
  const LatencyParams params = LatencyParams::planetlab_profile(3);
  const LatencyModel model(params);
  util::Rng rng(13);
  for (int i = 0; i < 10'000; ++i) {
    Endpoint a, b;
    a.id = static_cast<NodeId>(rng.uniform_int(0, 500));
    b.id = static_cast<NodeId>(rng.uniform_int(0, 500));
    if (a.id == b.id) continue;
    a.position = random_us_point(rng);
    b.position = random_us_point(rng);
    a.last_mile_ms = rng.uniform(0.0, 30.0);
    b.last_mile_ms = rng.uniform(0.0, 30.0);

    const double d = haversine_km(a.position, b.position);
    const double fiber = d * params.fiber_ms_per_km * params.route_inflation;
    const double hops = params.hops_base + params.hops_per_1000km * d / 1000.0;
    const double route = fiber + hops * params.per_hop_ms;
    const double bias = model.pair_bias_uncached(a.id, b.id);
    const double expect = route * bias + a.last_mile_ms + b.last_mile_ms;
    // Reversed arguments append the last miles in the other order — the
    // route and bias terms are bit-symmetric, the final additions follow
    // argument order (as they always have).
    const double expect_rev = route * bias + b.last_mile_ms + a.last_mile_ms;

    EXPECT_EQ(model.expected_one_way_ms(a, b), expect);
    EXPECT_EQ(model.expected_one_way_ms(a, b), expect);  // warm hit
    EXPECT_EQ(model.expected_one_way_ms(b, a), expect_rev);

    const double loss_rate =
        (params.base_loss + params.loss_per_1000km * d / 1000.0) *
        model.pair_bias_uncached(a.id, b.id);
    const double loss =
        std::min(params.loss_cap, std::max(0.0, loss_rate));
    EXPECT_EQ(model.loss_probability(a, b), loss);
  }
}

TEST(PairCacheTest, RebindingAnIdToNewCoordinatesRefreshesTheDistance) {
  const LatencyModel model(LatencyParams::simulation_profile(1));
  Endpoint a{1, {40.0, -74.0}, 5.0};
  Endpoint near_b{2, {41.0, -75.0}, 5.0};
  Endpoint far_b{2, {34.0, -118.0}, 5.0};  // same id, new coordinates

  const double near_ms = model.expected_one_way_ms(a, near_b);
  const double far_ms = model.expected_one_way_ms(a, far_b);
  EXPECT_LT(near_ms, far_ms);
  // Flipping back must re-derive the near distance exactly, not serve the
  // stale far entry.
  EXPECT_EQ(model.expected_one_way_ms(a, near_b), near_ms);
  EXPECT_EQ(model.expected_one_way_ms(a, far_b), far_ms);
}

TEST(PairCacheTest, TopologyEndpointsCarryPrecomputedCosLat) {
  const LatencyParams params = LatencyParams::simulation_profile(5);
  Topology topo{LatencyModel(params)};
  const NodeId x = topo.add_host(HostRole::kPlayer, {40.7, -74.0}, 10.0);
  const NodeId y = topo.add_host(HostRole::kDatacenter, {34.0, -118.2}, 0.5);

  const Endpoint ex = topo.endpoint(x);
  EXPECT_EQ(ex.cos_lat, cos_lat(ex.position));

  // Precomputed endpoints must agree bitwise with sentinel-carrying ones.
  const LatencyModel fresh(params);
  Endpoint hand_x{x, {40.7, -74.0}, 10.0};
  Endpoint hand_y{y, {34.0, -118.2}, 0.5};
  EXPECT_EQ(topo.model().expected_one_way_ms(topo.endpoint(x), topo.endpoint(y)),
            fresh.expected_one_way_ms(hand_x, hand_y));
}

}  // namespace
}  // namespace cloudfog::net
