#include "net/uplink.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace cloudfog::net {
namespace {

TEST(FairShareUplink, SingleFlowUsesFullCapacity) {
  sim::Simulator sim;
  FairShareUplink uplink(sim, 1'000.0);  // 1 Mbps
  FlowResult result;
  uplink.start_flow(500.0, 0.0, [&](const FlowResult& r) { result = r; });
  sim.run_all();
  // 500 kbit at 1000 kbps = 500 ms.
  EXPECT_DOUBLE_EQ(result.end, 500.0);
  EXPECT_DOUBLE_EQ(result.delivered, 500.0);
  EXPECT_FALSE(result.cancelled);
}

TEST(FairShareUplink, TwoFlowsShareEqually) {
  sim::Simulator sim;
  FairShareUplink uplink(sim, 1'000.0);
  std::vector<double> ends;
  uplink.start_flow(500.0, 0.0, [&](const FlowResult& r) { ends.push_back(r.end); });
  uplink.start_flow(500.0, 0.0, [&](const FlowResult& r) { ends.push_back(r.end); });
  sim.run_all();
  // Both progress at 500 kbps -> both finish at 1000 ms.
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_DOUBLE_EQ(ends[0], 1'000.0);
  EXPECT_DOUBLE_EQ(ends[1], 1'000.0);
}

TEST(FairShareUplink, LateArrivalSlowsExistingFlow) {
  sim::Simulator sim;
  FairShareUplink uplink(sim, 1'000.0);
  FlowResult first;
  uplink.start_flow(500.0, 0.0, [&](const FlowResult& r) { first = r; });
  sim.schedule_at(250.0, [&] {
    uplink.start_flow(1'000.0, 0.0, [](const FlowResult&) {});
  });
  sim.run_all();
  // First flow: 250 kbit in first 250 ms, then 250 kbit at 500 kbps = 500 ms.
  EXPECT_DOUBLE_EQ(first.end, 750.0);
}

TEST(FairShareUplink, DeadlineDeliveryExact) {
  sim::Simulator sim;
  FairShareUplink uplink(sim, 1'000.0);
  FlowResult result;
  uplink.start_flow(500.0, 200.0, [&](const FlowResult& r) { result = r; });
  sim.run_all();
  // At the 200 ms deadline, 200 kbit of 500 had been delivered.
  EXPECT_DOUBLE_EQ(result.delivered_by_deadline, 200.0);
  EXPECT_DOUBLE_EQ(result.on_time_fraction(), 0.4);
}

TEST(FairShareUplink, DeadlineAfterCompletionIsFullyOnTime) {
  sim::Simulator sim;
  FairShareUplink uplink(sim, 1'000.0);
  FlowResult result;
  uplink.start_flow(100.0, 5'000.0, [&](const FlowResult& r) { result = r; });
  sim.run_all();
  EXPECT_DOUBLE_EQ(result.on_time_fraction(), 1.0);
}

TEST(FairShareUplink, DeadlineAlreadyPassedAtStart) {
  sim::Simulator sim;
  FairShareUplink uplink(sim, 1'000.0);
  FlowResult result;
  sim.schedule_at(100.0, [&] {
    uplink.start_flow(100.0, 50.0, [&](const FlowResult& r) { result = r; });
  });
  sim.run_all();
  EXPECT_DOUBLE_EQ(result.delivered_by_deadline, 0.0);
}

TEST(FairShareUplink, DeadlineUnderSharedLoad) {
  sim::Simulator sim;
  FairShareUplink uplink(sim, 1'000.0);
  FlowResult result;
  uplink.start_flow(400.0, 400.0, [&](const FlowResult& r) { result = r; });
  uplink.start_flow(400.0, 0.0, [](const FlowResult&) {});
  sim.run_all();
  // Share 500 kbps: by the 400 ms deadline, 200 kbit delivered.
  EXPECT_DOUBLE_EQ(result.delivered_by_deadline, 200.0);
  EXPECT_DOUBLE_EQ(result.end, 800.0);
}

TEST(FairShareUplink, CancelReportsPartialDelivery) {
  sim::Simulator sim;
  FairShareUplink uplink(sim, 1'000.0);
  FlowResult result;
  const auto id =
      uplink.start_flow(500.0, 0.0, [&](const FlowResult& r) { result = r; });
  sim.schedule_at(100.0, [&] { EXPECT_TRUE(uplink.cancel_flow(id)); });
  sim.run_all();
  EXPECT_TRUE(result.cancelled);
  EXPECT_DOUBLE_EQ(result.delivered, 100.0);
  EXPECT_DOUBLE_EQ(result.end, 100.0);
}

TEST(FairShareUplink, CancelUnknownFlowReturnsFalse) {
  sim::Simulator sim;
  FairShareUplink uplink(sim, 1'000.0);
  EXPECT_FALSE(uplink.cancel_flow(42));
}

TEST(FairShareUplink, ZeroSizeFlowCompletesInline) {
  sim::Simulator sim;
  FairShareUplink uplink(sim, 1'000.0);
  bool completed = false;
  const auto id = uplink.start_flow(0.0, 0.0, [&](const FlowResult& r) {
    completed = true;
    EXPECT_DOUBLE_EQ(r.end, 0.0);
  });
  EXPECT_TRUE(completed);
  EXPECT_EQ(id, FairShareUplink::kInvalidFlow);
}

TEST(FairShareUplink, CurrentShareTracksFlowCount) {
  sim::Simulator sim;
  FairShareUplink uplink(sim, 900.0);
  EXPECT_DOUBLE_EQ(uplink.current_share(), 900.0);
  uplink.start_flow(1'000.0, 0.0, [](const FlowResult&) {});
  EXPECT_DOUBLE_EQ(uplink.current_share(), 900.0);
  uplink.start_flow(1'000.0, 0.0, [](const FlowResult&) {});
  uplink.start_flow(1'000.0, 0.0, [](const FlowResult&) {});
  EXPECT_DOUBLE_EQ(uplink.current_share(), 300.0);
  EXPECT_EQ(uplink.active_flows(), 3u);
}

TEST(FairShareUplink, TotalDeliveredAccumulates) {
  sim::Simulator sim;
  FairShareUplink uplink(sim, 1'000.0);
  uplink.start_flow(300.0, 0.0, [](const FlowResult&) {});
  uplink.start_flow(200.0, 0.0, [](const FlowResult&) {});
  sim.run_all();
  EXPECT_DOUBLE_EQ(uplink.total_delivered(), 500.0);
}

TEST(FairShareUplink, CompletionCallbackCanStartNewFlow) {
  sim::Simulator sim;
  FairShareUplink uplink(sim, 1'000.0);
  double second_end = 0.0;
  uplink.start_flow(100.0, 0.0, [&](const FlowResult&) {
    uplink.start_flow(100.0, 0.0,
                      [&](const FlowResult& r) { second_end = r.end; });
  });
  sim.run_all();
  EXPECT_DOUBLE_EQ(second_end, 200.0);
}

TEST(FairShareUplink, UnequalSizesFinishInSizeOrder) {
  sim::Simulator sim;
  FairShareUplink uplink(sim, 1'000.0);
  std::vector<int> order;
  uplink.start_flow(600.0, 0.0, [&](const FlowResult&) { order.push_back(2); });
  uplink.start_flow(200.0, 0.0, [&](const FlowResult&) { order.push_back(1); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  // Small flow: 200 kbit at 500 kbps = 400 ms. Large flow then has
  // 600 - 200 = 400 kbit left at full rate -> finishes at 800 ms.
  EXPECT_DOUBLE_EQ(sim.now(), 800.0);
}

TEST(FairShareUplink, RejectsNonPositiveCapacity) {
  sim::Simulator sim;
  EXPECT_THROW(FairShareUplink(sim, 0.0), std::logic_error);
}

TEST(FairShareUplink, RejectsNegativeSize) {
  sim::Simulator sim;
  FairShareUplink uplink(sim, 1'000.0);
  EXPECT_THROW(uplink.start_flow(-1.0, 0.0, [](const FlowResult&) {}),
               std::logic_error);
}

}  // namespace
}  // namespace cloudfog::net
