#include "net/trace.h"

#include <gtest/gtest.h>

#include <sstream>

namespace cloudfog::net {
namespace {

Topology tiny_topology() {
  Topology topo(LatencyModel(LatencyParams::planetlab_profile(11)));
  topo.add_host(HostRole::kDatacenter, {40.36, -74.67}, 0.5, "princeton");
  topo.add_host(HostRole::kPlayer, {34.07, -118.45}, 1.0, "ucla");
  topo.add_host(HostRole::kPlayer, {41.88, -87.63}, 2.0, "chicago");
  return topo;
}

TEST(LatencyTrace, MeasureProducesSymmetricMatrix) {
  Topology topo = tiny_topology();
  util::Rng rng(1);
  LatencyTrace trace = LatencyTrace::measure(topo, rng);
  EXPECT_EQ(trace.size(), 3u);
  for (NodeId a = 0; a < 3; ++a) {
    EXPECT_DOUBLE_EQ(trace.one_way_ms(a, a), 0.0);
    for (NodeId b = 0; b < 3; ++b) {
      EXPECT_DOUBLE_EQ(trace.one_way_ms(a, b), trace.one_way_ms(b, a));
    }
  }
}

TEST(LatencyTrace, MeasuredValuesNearModelExpectation) {
  Topology topo = tiny_topology();
  util::Rng rng(1);
  LatencyTrace trace = LatencyTrace::measure(topo, rng);
  // One jittered measurement should be within a factor ~2 of the mean.
  const TimeMs expected = topo.expected_one_way_ms(0, 1);
  EXPECT_GT(trace.one_way_ms(0, 1), expected * 0.4);
  EXPECT_LT(trace.one_way_ms(0, 1), expected * 2.5);
}

TEST(LatencyTrace, SetRejectsNegative) {
  LatencyTrace trace(2);
  EXPECT_THROW(trace.set_one_way_ms(0, 1, -1.0), std::logic_error);
}

TEST(LatencyTrace, IndexOutOfRangeRejected) {
  LatencyTrace trace(2);
  EXPECT_THROW(trace.one_way_ms(0, 2), std::logic_error);
}

TEST(LatencyTrace, StreamRoundTrip) {
  LatencyTrace trace(3);
  trace.set_one_way_ms(0, 1, 12.5);
  trace.set_one_way_ms(0, 2, 30.0);
  trace.set_one_way_ms(1, 2, 7.25);
  std::stringstream ss;
  trace.save(ss);
  LatencyTrace loaded = LatencyTrace::load(ss);
  EXPECT_EQ(loaded.size(), 3u);
  EXPECT_DOUBLE_EQ(loaded.one_way_ms(1, 0), 12.5);
  EXPECT_DOUBLE_EQ(loaded.one_way_ms(2, 0), 30.0);
  EXPECT_DOUBLE_EQ(loaded.one_way_ms(2, 1), 7.25);
}

TEST(LatencyTrace, FileRoundTrip) {
  Topology topo = tiny_topology();
  util::Rng rng(4);
  LatencyTrace trace = LatencyTrace::measure(topo, rng);
  const std::string path = ::testing::TempDir() + "/cloudfog_trace_test.txt";
  trace.save_file(path);
  LatencyTrace loaded = LatencyTrace::load_file(path);
  for (NodeId a = 0; a < 3; ++a)
    for (NodeId b = 0; b < 3; ++b)
      EXPECT_NEAR(loaded.one_way_ms(a, b), trace.one_way_ms(a, b), 1e-4);
}

TEST(LatencyTrace, LoadRejectsBadHeader) {
  std::stringstream ss("not-a-trace v9 3\n");
  EXPECT_THROW(LatencyTrace::load(ss), std::logic_error);
}

TEST(LatencyTrace, LoadRejectsTruncatedBody) {
  std::stringstream ss("cloudfog-latency-trace v1 3\n0 1 2\n");
  EXPECT_THROW(LatencyTrace::load(ss), std::logic_error);
}

TEST(LatencyTrace, LoadMissingFileRejected) {
  EXPECT_THROW(LatencyTrace::load_file("/nonexistent/path/trace.txt"),
               std::logic_error);
}

}  // namespace
}  // namespace cloudfog::net
