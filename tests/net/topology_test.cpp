#include "net/topology.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cloudfog::net {
namespace {

Topology small_world() {
  Topology topo(LatencyModel(LatencyParams::simulation_profile()));
  topo.add_host(HostRole::kDatacenter, {40.0, -75.0}, 0.5, "dc-east");
  topo.add_host(HostRole::kDatacenter, {34.0, -118.0}, 0.5, "dc-west");
  topo.add_host(HostRole::kPlayer, {40.5, -75.2}, 12.0, "player-east", 3.0);
  topo.add_host(HostRole::kPlayer, {34.2, -118.3}, 8.0, "player-west");
  return topo;
}

TEST(Topology, SequentialIds) {
  Topology topo = small_world();
  EXPECT_EQ(topo.size(), 4u);
  for (NodeId i = 0; i < 4; ++i) EXPECT_EQ(topo.host(i).id, i);
}

TEST(Topology, UnknownHostRejected) {
  Topology topo = small_world();
  EXPECT_THROW(topo.host(99), std::logic_error);
}

TEST(Topology, RolesFilter) {
  Topology topo = small_world();
  EXPECT_EQ(topo.hosts_with_role(HostRole::kDatacenter).size(), 2u);
  EXPECT_EQ(topo.hosts_with_role(HostRole::kPlayer).size(), 2u);
  EXPECT_TRUE(topo.hosts_with_role(HostRole::kEdgeServer).empty());
}

TEST(Topology, ServerLastMileDefaultsToClientValue) {
  Topology topo = small_world();
  EXPECT_DOUBLE_EQ(topo.host(3).server_last_mile_ms, 8.0);   // defaulted
  EXPECT_DOUBLE_EQ(topo.host(2).server_last_mile_ms, 3.0);   // explicit
}

TEST(Topology, ServerPathFasterWithWiredInterface) {
  Topology topo = small_world();
  // Host 2 has last_mile 12 but server interface 3: serving from it must be
  // 9 ms faster one-way than a client-to-client path.
  const TimeMs client_path = topo.expected_one_way_ms(2, 3);
  const TimeMs server_path = topo.expected_server_one_way_ms(2, 3);
  EXPECT_NEAR(client_path - server_path, 9.0, 1e-9);
}

TEST(Topology, ServerRttIsTwiceServerOneWay) {
  Topology topo = small_world();
  EXPECT_DOUBLE_EQ(topo.expected_server_rtt_ms(0, 2),
                   2.0 * topo.expected_server_one_way_ms(0, 2));
}

TEST(Topology, NearestPicksClosestDatacenter) {
  Topology topo = small_world();
  const auto dcs = topo.hosts_with_role(HostRole::kDatacenter);
  EXPECT_EQ(topo.nearest(2, dcs), 0u);  // east player -> east DC
  EXPECT_EQ(topo.nearest(3, dcs), 1u);  // west player -> west DC
}

TEST(Topology, NearestRejectsEmptyCandidates) {
  Topology topo = small_world();
  EXPECT_THROW(topo.nearest(2, {}), std::logic_error);
}

TEST(Topology, SortedByLatencyAscending) {
  Topology topo = small_world();
  const auto order = topo.sorted_by_latency(2, {0, 1, 3});
  ASSERT_EQ(order.size(), 3u);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(topo.expected_one_way_ms(2, order[i - 1]),
              topo.expected_one_way_ms(2, order[i]));
  }
  EXPECT_EQ(order.front(), 0u);
}

TEST(Topology, NegativeLastMileRejected) {
  Topology topo(LatencyModel(LatencyParams::simulation_profile()));
  EXPECT_THROW(topo.add_host(HostRole::kPlayer, {40.0, -75.0}, -1.0),
               std::logic_error);
}

TEST(BuildTopology, CountsMatchConfig) {
  PlacementConfig config;
  config.num_players = 200;
  config.num_datacenters = 5;
  config.num_edge_servers = 7;
  config.seed = 3;
  Topology topo = build_topology(config, LatencyParams::simulation_profile(3));
  EXPECT_EQ(topo.size(), 212u);
  EXPECT_EQ(topo.hosts_with_role(HostRole::kDatacenter).size(), 5u);
  EXPECT_EQ(topo.hosts_with_role(HostRole::kEdgeServer).size(), 7u);
  EXPECT_EQ(topo.hosts_with_role(HostRole::kPlayer).size(), 200u);
}

TEST(BuildTopology, DatacentersComeFirstAndAreLabelled) {
  PlacementConfig config;
  config.num_players = 10;
  config.num_datacenters = 3;
  Topology topo = build_topology(config, LatencyParams::simulation_profile());
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(topo.host(i).role, HostRole::kDatacenter);
    EXPECT_EQ(topo.host(i).label.substr(0, 3), "DC:");
  }
}

TEST(BuildTopology, DeterministicForSameSeed) {
  PlacementConfig config;
  config.num_players = 50;
  config.seed = 77;
  Topology a = build_topology(config, LatencyParams::simulation_profile(77));
  Topology b = build_topology(config, LatencyParams::simulation_profile(77));
  for (NodeId i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.host(i).position, b.host(i).position);
    EXPECT_EQ(a.host(i).last_mile_ms, b.host(i).last_mile_ms);
  }
}

TEST(BuildTopology, DifferentSeedsDiffer) {
  PlacementConfig c1, c2;
  c1.num_players = c2.num_players = 50;
  c1.seed = 1;
  c2.seed = 2;
  Topology a = build_topology(c1, LatencyParams::simulation_profile(1));
  Topology b = build_topology(c2, LatencyParams::simulation_profile(2));
  int same_position = 0;
  for (NodeId i = 5; i < a.size(); ++i)
    if (a.host(i).position == b.host(i).position) ++same_position;
  EXPECT_LT(same_position, 5);
}

TEST(BuildTopology, PlayerWiredInterfaceNeverSlowerThanAccess) {
  PlacementConfig config;
  config.num_players = 300;
  Topology topo = build_topology(config, LatencyParams::simulation_profile());
  for (NodeId id : topo.hosts_with_role(HostRole::kPlayer)) {
    EXPECT_LE(topo.host(id).server_last_mile_ms, topo.host(id).last_mile_ms);
  }
}

TEST(BuildTopology, PoorConnectivityFractionCreatesHeavyTail) {
  PlacementConfig config;
  config.num_players = 2'000;
  config.poor_connectivity_fraction = 0.3;
  Topology topo = build_topology(config, LatencyParams::simulation_profile());
  int slow = 0;
  for (NodeId id : topo.hosts_with_role(HostRole::kPlayer)) {
    if (topo.host(id).last_mile_ms > 30.0) ++slow;
  }
  // Roughly the configured fraction should have last miles above 30 ms.
  EXPECT_GT(slow, 300);
  EXPECT_LT(slow, 900);
}

TEST(BuildPlanetLab, TwoNamedDatacenters) {
  Topology topo = build_planetlab_topology(100, 5);
  const auto dcs = topo.hosts_with_role(HostRole::kDatacenter);
  ASSERT_EQ(dcs.size(), 2u);
  EXPECT_NE(topo.host(dcs[0]).label.find("Princeton"), std::string::npos);
  EXPECT_NE(topo.host(dcs[1]).label.find("UCLA"), std::string::npos);
  EXPECT_EQ(topo.hosts_with_role(HostRole::kPlayer).size(), 100u);
}

TEST(BuildPlanetLab, UniversityHostsHaveTightAccess) {
  Topology topo = build_planetlab_topology(400, 5);
  for (NodeId id : topo.hosts_with_role(HostRole::kPlayer)) {
    EXPECT_LT(topo.host(id).last_mile_ms, 25.0);
  }
}

}  // namespace
}  // namespace cloudfog::net
