// Tests of the trace-backed topology override (the PeerSim-driven-by-a-
// PlanetLab-trace workflow) and of the packet-loss model.
#include <gtest/gtest.h>

#include "net/trace.h"
#include "util/stats.h"

namespace cloudfog::net {
namespace {

Topology tiny() {
  Topology topo(LatencyModel(LatencyParams::simulation_profile(2)));
  topo.add_host(HostRole::kDatacenter, {40.0, -75.0}, 0.5);
  topo.add_host(HostRole::kPlayer, {40.5, -75.2}, 10.0, "p1", 3.0);
  topo.add_host(HostRole::kPlayer, {34.0, -118.0}, 8.0);
  return topo;
}

TEST(TraceTopology, AttachOverridesExpectedLatency) {
  Topology topo = tiny();
  LatencyTrace trace(3);
  trace.set_one_way_ms(0, 1, 42.0);
  trace.set_one_way_ms(0, 2, 77.0);
  trace.set_one_way_ms(1, 2, 55.0);
  topo.attach_trace(&trace);
  EXPECT_TRUE(topo.has_trace());
  EXPECT_DOUBLE_EQ(topo.expected_one_way_ms(0, 1), 42.0);
  EXPECT_DOUBLE_EQ(topo.expected_one_way_ms(2, 1), 55.0);
  EXPECT_DOUBLE_EQ(topo.expected_rtt_ms(0, 2), 154.0);
}

TEST(TraceTopology, ServerPathUsesTraceToo) {
  Topology topo = tiny();
  LatencyTrace trace(3);
  trace.set_one_way_ms(1, 2, 25.0);
  topo.attach_trace(&trace);
  EXPECT_DOUBLE_EQ(topo.expected_server_one_way_ms(1, 2), 25.0);
  EXPECT_DOUBLE_EQ(topo.expected_server_rtt_ms(1, 2), 50.0);
}

TEST(TraceTopology, SampleJittersAroundTraceValue) {
  Topology topo = tiny();
  LatencyTrace trace(3);
  trace.set_one_way_ms(0, 1, 40.0);
  topo.attach_trace(&trace);
  util::Rng rng(5);
  util::RunningStats stats;
  for (int i = 0; i < 5'000; ++i) stats.add(topo.sample_one_way_ms(0, 1, rng));
  EXPECT_NEAR(stats.mean(), 40.0, 2.0);
  EXPECT_GT(stats.stddev(), 0.5);
}

TEST(TraceTopology, HostsBeyondTraceFallBackToModel) {
  Topology topo = tiny();
  LatencyTrace trace(2);  // covers hosts 0 and 1 only
  trace.set_one_way_ms(0, 1, 42.0);
  topo.attach_trace(&trace);
  EXPECT_DOUBLE_EQ(topo.expected_one_way_ms(0, 1), 42.0);
  // Pair (0, 2) is outside the trace: geographic model applies.
  EXPECT_GT(topo.expected_one_way_ms(0, 2), 15.0);
}

TEST(TraceTopology, DetachRestoresModel) {
  Topology topo = tiny();
  const TimeMs model_value = topo.expected_one_way_ms(0, 1);
  LatencyTrace trace(3);
  trace.set_one_way_ms(0, 1, 1.0);
  topo.attach_trace(&trace);
  EXPECT_DOUBLE_EQ(topo.expected_one_way_ms(0, 1), 1.0);
  topo.attach_trace(nullptr);
  EXPECT_FALSE(topo.has_trace());
  EXPECT_DOUBLE_EQ(topo.expected_one_way_ms(0, 1), model_value);
}

TEST(LossModel, ZeroOnLoopback) {
  Topology topo = tiny();
  EXPECT_DOUBLE_EQ(topo.loss_probability(1, 1), 0.0);
}

TEST(LossModel, GrowsWithDistance) {
  // Same endpoint pair ids => same bias; compare a short and a long path
  // via raw model endpoints.
  LatencyModel model(LatencyParams::simulation_profile(2));
  const Endpoint a{1, {40.0, -100.0}, 5.0};
  const Endpoint near{2, {40.5, -100.0}, 5.0};
  const Endpoint far{2, {34.0, -118.0}, 5.0};
  EXPECT_LT(model.loss_probability(a, near), model.loss_probability(a, far));
}

TEST(LossModel, WithinCap) {
  LatencyModel model(LatencyParams::simulation_profile(2));
  for (NodeId b = 2; b < 100; ++b) {
    const Endpoint a{1, {45.0, -70.0}, 5.0};
    const Endpoint z{b, {32.0, -120.0}, 5.0};
    const double p = model.loss_probability(a, z);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 0.25);
  }
}

TEST(LossModel, DeterministicPerPair) {
  Topology topo = tiny();
  EXPECT_DOUBLE_EQ(topo.loss_probability(0, 2), topo.loss_probability(0, 2));
  EXPECT_DOUBLE_EQ(topo.loss_probability(0, 2), topo.loss_probability(2, 0));
}

TEST(LossModel, PlanetLabLossier) {
  const auto sim = LatencyParams::simulation_profile(3);
  const auto pl = LatencyParams::planetlab_profile(3);
  EXPECT_GT(pl.base_loss, sim.base_loss);
  EXPECT_GT(pl.loss_per_1000km, sim.loss_per_1000km);
}

TEST(LossModel, CrossCountryMagnitudeIsSmallButReal) {
  LatencyModel model(LatencyParams::simulation_profile(4));
  const Endpoint a{1, {40.7, -74.0}, 10.0};
  const Endpoint b{2, {34.0, -118.2}, 10.0};
  const double p = model.loss_probability(a, b);
  EXPECT_GT(p, 0.001);
  EXPECT_LT(p, 0.08);
}

}  // namespace
}  // namespace cloudfog::net
