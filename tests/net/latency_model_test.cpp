#include "net/latency_model.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace cloudfog::net {
namespace {

Endpoint make_endpoint(NodeId id, double lat, double lon, double last_mile) {
  return Endpoint{id, GeoPoint{lat, lon}, last_mile};
}

TEST(LatencyModel, Symmetric) {
  LatencyModel model(LatencyParams::simulation_profile());
  const auto a = make_endpoint(1, 40.0, -75.0, 10.0);
  const auto b = make_endpoint(2, 34.0, -118.0, 5.0);
  EXPECT_DOUBLE_EQ(model.expected_one_way_ms(a, b),
                   model.expected_one_way_ms(b, a));
}

TEST(LatencyModel, LoopbackFloor) {
  LatencyModel model(LatencyParams::simulation_profile());
  const auto a = make_endpoint(1, 40.0, -75.0, 10.0);
  EXPECT_DOUBLE_EQ(model.expected_one_way_ms(a, a), 0.1);
}

TEST(LatencyModel, RttIsTwiceOneWay) {
  LatencyModel model(LatencyParams::simulation_profile());
  const auto a = make_endpoint(1, 40.0, -75.0, 10.0);
  const auto b = make_endpoint(2, 34.0, -118.0, 5.0);
  EXPECT_DOUBLE_EQ(model.expected_rtt_ms(a, b),
                   2.0 * model.expected_one_way_ms(a, b));
}

TEST(LatencyModel, LastMileIsAdditiveNotScaled) {
  // Two pairs with the same ids (same route bias) but different last miles
  // must differ by exactly the last-mile difference.
  LatencyModel model(LatencyParams::simulation_profile());
  const auto a1 = make_endpoint(1, 40.0, -75.0, 10.0);
  const auto a2 = make_endpoint(1, 40.0, -75.0, 25.0);
  const auto b = make_endpoint(2, 34.0, -118.0, 5.0);
  EXPECT_NEAR(model.expected_one_way_ms(a2, b) - model.expected_one_way_ms(a1, b),
              15.0, 1e-9);
}

TEST(LatencyModel, FurtherIsSlowerSameBias) {
  LatencyModel model(LatencyParams::simulation_profile());
  // Same pair ids so the route bias cancels; move b farther away.
  const auto a = make_endpoint(1, 40.0, -100.0, 5.0);
  const auto near = make_endpoint(2, 41.0, -100.0, 5.0);
  const auto far = make_endpoint(2, 48.0, -80.0, 5.0);
  EXPECT_LT(model.expected_one_way_ms(a, near), model.expected_one_way_ms(a, far));
}

TEST(LatencyModel, PairBiasDeterministicAndSymmetric) {
  LatencyModel model(LatencyParams::simulation_profile(99));
  EXPECT_DOUBLE_EQ(model.pair_bias(3, 8), model.pair_bias(3, 8));
  EXPECT_DOUBLE_EQ(model.pair_bias(3, 8), model.pair_bias(8, 3));
}

TEST(LatencyModel, PairBiasVariesAcrossPairs) {
  LatencyModel model(LatencyParams::simulation_profile(99));
  util::RunningStats stats;
  for (NodeId b = 1; b <= 200; ++b) stats.add(model.pair_bias(0, b));
  EXPECT_GT(stats.stddev(), 0.1);
  // Lognormal(0, sigma): median 1 -> mean slightly above 1.
  EXPECT_NEAR(stats.mean(), 1.15, 0.25);
}

TEST(LatencyModel, PairBiasDependsOnSeed) {
  LatencyModel m1(LatencyParams::simulation_profile(1));
  LatencyModel m2(LatencyParams::simulation_profile(2));
  int equal = 0;
  for (NodeId b = 1; b <= 50; ++b)
    if (m1.pair_bias(0, b) == m2.pair_bias(0, b)) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(LatencyModel, SampleJitterNeverBelowLastMiles) {
  LatencyModel model(LatencyParams::simulation_profile());
  const auto a = make_endpoint(1, 40.0, -75.0, 10.0);
  const auto b = make_endpoint(2, 34.0, -118.0, 5.0);
  util::Rng rng(1);
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_GT(model.sample_one_way_ms(a, b, rng), 15.0);
  }
}

TEST(LatencyModel, SampleJitterCentersOnExpected) {
  LatencyModel model(LatencyParams::simulation_profile());
  const auto a = make_endpoint(1, 40.0, -75.0, 10.0);
  const auto b = make_endpoint(2, 34.0, -118.0, 5.0);
  util::Rng rng(1);
  util::RunningStats stats;
  for (int i = 0; i < 20'000; ++i) stats.add(model.sample_one_way_ms(a, b, rng));
  EXPECT_NEAR(stats.mean(), model.expected_one_way_ms(a, b),
              0.05 * model.expected_one_way_ms(a, b));
}

TEST(LatencyModel, PlanetLabProfileHarsherThanSimulation) {
  const auto sim = LatencyParams::simulation_profile();
  const auto pl = LatencyParams::planetlab_profile();
  EXPECT_GT(pl.route_inflation, sim.route_inflation);
  EXPECT_GT(pl.jitter_sigma, sim.jitter_sigma);
  EXPECT_GE(pl.pair_bias_sigma, sim.pair_bias_sigma);
}

TEST(LatencyModel, CrossCountryMagnitudeRealistic) {
  // NYC <-> LA expected one-way should be tens of milliseconds, not
  // microseconds or seconds.
  LatencyModel model(LatencyParams::simulation_profile());
  const auto a = make_endpoint(1, 40.7128, -74.0060, 10.0);
  const auto b = make_endpoint(2, 34.0522, -118.2437, 10.0);
  const TimeMs t = model.expected_one_way_ms(a, b);
  EXPECT_GT(t, 40.0);
  EXPECT_LT(t, 250.0);
}

TEST(LatencyModel, MinRouteMsBoundsTheUnbiasedBackboneOnly) {
  // min_route_ms is the backbone term at zero distance: hops_base x
  // per_hop_ms. It lower-bounds route_ms (the unbiased backbone, monotone
  // in distance) for every pair — but NOT necessarily the biased expected
  // latency, since the per-pair bias is multiplicative lognormal and can
  // fall below 1. The shard runner therefore derives its lookahead from
  // actual cross-shard edge latencies, never from this floor.
  const LatencyParams params = LatencyParams::simulation_profile();
  LatencyModel model(params);
  EXPECT_DOUBLE_EQ(model.min_route_ms(), params.hops_base * params.per_hop_ms);
  const auto a = make_endpoint(1, 40.0, -75.0, 0.0);
  for (NodeId id = 2; id <= 20; ++id) {
    const auto b = make_endpoint(id, -60.0 + 6.0 * static_cast<double>(id),
                                 10.0 * static_cast<double>(id), 0.0);
    EXPECT_GE(model.route_ms(a, b), model.min_route_ms());
  }
}

}  // namespace
}  // namespace cloudfog::net
