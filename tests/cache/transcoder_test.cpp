// Transcoder unit tests: job scheduling on the event engine, per-owner
// tracking, completion bookkeeping and the O(1) churn cancel.
#include "cache/transcoder.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/simulator.h"

namespace cloudfog::cache {
namespace {

TEST(TranscodeModelTest, LinearDelay) {
  TranscodeModel model{2.0, 0.01};
  EXPECT_DOUBLE_EQ(model.delay_ms(0.0), 2.0);
  EXPECT_DOUBLE_EQ(model.delay_ms(100.0), 3.0);
}

TEST(TranscoderTest, JobFiresAfterItsDelay) {
  sim::Simulator sim;
  Transcoder transcoder(sim, TranscodeModel{});
  TimeMs fired_at = -1.0;
  transcoder.schedule(7, 5.0, [&] { fired_at = sim.now(); });
  EXPECT_EQ(transcoder.in_flight(7), 1u);
  EXPECT_EQ(transcoder.in_flight_total(), 1u);
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
  EXPECT_EQ(transcoder.in_flight(7), 0u);
  EXPECT_EQ(transcoder.in_flight_total(), 0u);
  EXPECT_EQ(transcoder.jobs_started(), 1u);
  EXPECT_EQ(transcoder.jobs_completed(), 1u);
  EXPECT_EQ(transcoder.jobs_cancelled(), 0u);
}

TEST(TranscoderTest, JobsTrackedPerOwner) {
  sim::Simulator sim;
  Transcoder transcoder(sim, TranscodeModel{});
  int fired = 0;
  transcoder.schedule(1, 5.0, [&] { ++fired; });
  transcoder.schedule(1, 6.0, [&] { ++fired; });
  transcoder.schedule(2, 7.0, [&] { ++fired; });
  EXPECT_EQ(transcoder.in_flight(1), 2u);
  EXPECT_EQ(transcoder.in_flight(2), 1u);
  EXPECT_EQ(transcoder.in_flight(3), 0u);
  EXPECT_EQ(transcoder.in_flight_total(), 3u);
  sim.run_until(10.0);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(transcoder.in_flight_total(), 0u);
}

TEST(TranscoderTest, CancelOwnerStopsOnlyThatOwnersJobs) {
  sim::Simulator sim;
  Transcoder transcoder(sim, TranscodeModel{});
  int fired_1 = 0, fired_2 = 0;
  transcoder.schedule(1, 5.0, [&] { ++fired_1; });
  transcoder.schedule(1, 6.0, [&] { ++fired_1; });
  transcoder.schedule(2, 7.0, [&] { ++fired_2; });
  EXPECT_EQ(transcoder.cancel_owner(1), 2u);
  EXPECT_EQ(transcoder.in_flight(1), 0u);
  EXPECT_EQ(transcoder.in_flight(2), 1u);
  sim.run_until(10.0);
  // Cancelled jobs never fire; the other owner's job is untouched.
  EXPECT_EQ(fired_1, 0);
  EXPECT_EQ(fired_2, 1);
  EXPECT_EQ(transcoder.jobs_cancelled(), 2u);
  EXPECT_EQ(transcoder.jobs_completed(), 1u);
}

TEST(TranscoderTest, CancelOwnerWithNoJobsIsANoOp) {
  sim::Simulator sim;
  Transcoder transcoder(sim, TranscodeModel{});
  EXPECT_EQ(transcoder.cancel_owner(42), 0u);
}

TEST(TranscoderTest, CompletedJobsCannotBeCancelledAgain) {
  sim::Simulator sim;
  Transcoder transcoder(sim, TranscodeModel{});
  int fired = 0;
  transcoder.schedule(1, 1.0, [&] { ++fired; });
  sim.run_until(2.0);
  ASSERT_EQ(fired, 1);
  // The completed job deregistered itself; cancelling finds nothing.
  EXPECT_EQ(transcoder.cancel_owner(1), 0u);
}

TEST(TranscoderTest, ManyJobsSurviveChurnInterleaving) {
  sim::Simulator sim;
  Transcoder transcoder(sim, TranscodeModel{});
  std::vector<int> fired(4, 0);
  for (NodeId owner = 0; owner < 4; ++owner) {
    for (int j = 0; j < 8; ++j) {
      transcoder.schedule(owner, 1.0 + j,
                          [&fired, owner] { ++fired[owner]; });
    }
  }
  sim.run_until(3.5);  // jobs at 1,2,3 have fired for every owner
  EXPECT_EQ(transcoder.cancel_owner(2), 5u);
  sim.run_until(100.0);
  EXPECT_EQ(fired[0], 8);
  EXPECT_EQ(fired[1], 8);
  EXPECT_EQ(fired[2], 3);
  EXPECT_EQ(fired[3], 8);
  EXPECT_EQ(transcoder.jobs_started(), 32u);
  EXPECT_EQ(transcoder.jobs_completed(), 27u);
  EXPECT_EQ(transcoder.jobs_cancelled(), 5u);
  EXPECT_EQ(transcoder.in_flight_total(), 0u);
}

TEST(TranscoderTest, InvalidArgumentsRejected) {
  sim::Simulator sim;
  Transcoder transcoder(sim, TranscodeModel{});
  EXPECT_THROW(transcoder.schedule(kInvalidNode, 1.0, [] {}),
               std::logic_error);
  EXPECT_THROW(transcoder.schedule(1, -1.0, [] {}), std::logic_error);
  EXPECT_THROW(transcoder.schedule(1, 1.0, {}), std::logic_error);
}

}  // namespace
}  // namespace cloudfog::cache
