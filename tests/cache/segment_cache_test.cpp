// SegmentCache unit tests: LRU mechanics, byte accounting, and — the main
// event — a randomized oracle comparing the intrusive-list implementation
// against a naive reference on every operation of long random sequences.
#include "cache/segment_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace cloudfog::cache {
namespace {

SegmentKey key(std::int64_t game, std::int64_t index, std::int64_t level) {
  return SegmentKey{static_cast<game::GameId>(game),
                    static_cast<std::uint64_t>(index), static_cast<int>(level)};
}

TEST(SegmentCacheTest, InsertThenContains) {
  SegmentCache cache(100.0);
  EXPECT_FALSE(cache.contains(key(0, 1, 3)));
  EXPECT_TRUE(cache.insert(key(0, 1, 3), 40.0));
  EXPECT_TRUE(cache.contains(key(0, 1, 3)));
  EXPECT_DOUBLE_EQ(cache.used_kbit(), 40.0);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(SegmentCacheTest, ZeroCapacityNeverAdmits) {
  SegmentCache cache(0.0);
  EXPECT_FALSE(cache.insert(key(0, 1, 3), 1.0));
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(SegmentCacheTest, OversizedInsertRejectedWithoutEvicting) {
  SegmentCache cache(100.0);
  ASSERT_TRUE(cache.insert(key(0, 1, 3), 60.0));
  EXPECT_FALSE(cache.insert(key(0, 2, 3), 150.0));
  // The resident entry must have survived the rejected admission.
  EXPECT_TRUE(cache.contains(key(0, 1, 3)));
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(SegmentCacheTest, NonPositiveSizeRejected) {
  SegmentCache cache(100.0);
  EXPECT_FALSE(cache.insert(key(0, 1, 3), 0.0));
  EXPECT_FALSE(cache.insert(key(0, 1, 3), -5.0));
}

TEST(SegmentCacheTest, EvictsLeastRecentlyUsedFirst) {
  SegmentCache cache(100.0);
  ASSERT_TRUE(cache.insert(key(0, 1, 3), 40.0));
  ASSERT_TRUE(cache.insert(key(0, 2, 3), 40.0));
  // Touch the older entry: 2 becomes the LRU victim.
  ASSERT_TRUE(cache.touch(key(0, 1, 3)));
  ASSERT_TRUE(cache.insert(key(0, 3, 3), 40.0));
  EXPECT_TRUE(cache.contains(key(0, 1, 3)));
  EXPECT_FALSE(cache.contains(key(0, 2, 3)));
  EXPECT_TRUE(cache.contains(key(0, 3, 3)));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(SegmentCacheTest, ReinsertRefreshesRecencyAndSize) {
  SegmentCache cache(100.0);
  ASSERT_TRUE(cache.insert(key(0, 1, 3), 40.0));
  ASSERT_TRUE(cache.insert(key(0, 2, 3), 40.0));
  ASSERT_TRUE(cache.insert(key(0, 1, 3), 20.0));  // refresh, shrink
  EXPECT_DOUBLE_EQ(cache.used_kbit(), 60.0);
  const auto order = cache.keys_mru_to_lru();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], key(0, 1, 3));
  EXPECT_EQ(order[1], key(0, 2, 3));
}

TEST(SegmentCacheTest, ContainsDoesNotTouchRecency) {
  SegmentCache cache(100.0);
  ASSERT_TRUE(cache.insert(key(0, 1, 3), 40.0));
  ASSERT_TRUE(cache.insert(key(0, 2, 3), 40.0));
  // A contains() probe of the LRU entry must not rescue it.
  EXPECT_TRUE(cache.contains(key(0, 1, 3)));
  ASSERT_TRUE(cache.insert(key(0, 3, 3), 40.0));
  EXPECT_FALSE(cache.contains(key(0, 1, 3)));
}

TEST(SegmentCacheTest, EraseFreesBytes) {
  SegmentCache cache(100.0);
  ASSERT_TRUE(cache.insert(key(0, 1, 3), 40.0));
  EXPECT_TRUE(cache.erase(key(0, 1, 3)));
  EXPECT_FALSE(cache.erase(key(0, 1, 3)));
  EXPECT_DOUBLE_EQ(cache.used_kbit(), 0.0);
  EXPECT_EQ(cache.entry_count(), 0u);
  // Erase is not an eviction.
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(SegmentCacheTest, ClearKeepsCapacity) {
  SegmentCache cache(100.0);
  ASSERT_TRUE(cache.insert(key(0, 1, 3), 40.0));
  ASSERT_TRUE(cache.insert(key(0, 2, 3), 40.0));
  cache.clear();
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_DOUBLE_EQ(cache.used_kbit(), 0.0);
  EXPECT_DOUBLE_EQ(cache.capacity_kbit(), 100.0);
  EXPECT_TRUE(cache.insert(key(0, 3, 3), 90.0));
}

TEST(SegmentCacheTest, BestAncestorFindsNearestHigherLevel) {
  SegmentCache cache(1'000.0);
  ASSERT_TRUE(cache.insert(key(0, 7, 5), 100.0));
  ASSERT_TRUE(cache.insert(key(0, 7, 3), 60.0));
  ASSERT_TRUE(cache.insert(key(1, 7, 4), 80.0));  // other game: invisible
  EXPECT_EQ(cache.best_ancestor_level(0, 7, 2), 3);  // nearest above 2
  EXPECT_EQ(cache.best_ancestor_level(0, 7, 3), 5);  // strictly above
  EXPECT_EQ(cache.best_ancestor_level(0, 7, 5), 0);  // nothing above 5
  EXPECT_EQ(cache.best_ancestor_level(0, 8, 2), 0);  // other content index
}

// --- randomized oracle ------------------------------------------------------
//
// Naive reference: an std::list ordered MRU-first with linear lookup. Every
// mutation the real cache supports is mirrored here, and after each step the
// full observable state (order, bytes, evictions) must match exactly.
class NaiveLru {
 public:
  explicit NaiveLru(Kbit capacity) : capacity_(capacity) {}

  bool contains(const SegmentKey& k) const { return find(k) != entries_.end(); }

  bool touch(const SegmentKey& k) {
    auto it = find(k);
    if (it == entries_.end()) return false;
    entries_.splice(entries_.begin(), entries_, it);
    return true;
  }

  bool insert(const SegmentKey& k, Kbit size) {
    if (size <= 0.0 || size > capacity_) return false;
    auto it = find(k);
    if (it != entries_.end()) {
      used_ -= it->second;
      entries_.erase(it);
    }
    while (used_ + size > capacity_) {
      used_ -= entries_.back().second;
      entries_.pop_back();
      ++evictions_;
    }
    entries_.emplace_front(k, size);
    used_ += size;
    return true;
  }

  bool erase(const SegmentKey& k) {
    auto it = find(k);
    if (it == entries_.end()) return false;
    used_ -= it->second;
    entries_.erase(it);
    return true;
  }

  int best_ancestor_level(game::GameId game, std::uint64_t index,
                          int level) const {
    int best = 0;
    for (const auto& [k, size] : entries_) {
      if (k.game == game && k.content_index == index && k.level > level &&
          (best == 0 || k.level < best)) {
        best = k.level;
      }
    }
    return best;
  }

  std::vector<SegmentKey> keys_mru_to_lru() const {
    std::vector<SegmentKey> out;
    for (const auto& [k, size] : entries_) out.push_back(k);
    return out;
  }

  Kbit used() const { return used_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  std::list<std::pair<SegmentKey, Kbit>>::const_iterator find(
      const SegmentKey& k) const {
    return std::find_if(entries_.begin(), entries_.end(),
                        [&](const auto& e) { return e.first == k; });
  }
  std::list<std::pair<SegmentKey, Kbit>>::iterator find(const SegmentKey& k) {
    return std::find_if(entries_.begin(), entries_.end(),
                        [&](const auto& e) { return e.first == k; });
  }

  Kbit capacity_;
  Kbit used_ = 0.0;
  std::uint64_t evictions_ = 0;
  std::list<std::pair<SegmentKey, Kbit>> entries_;
};

TEST(SegmentCacheOracleTest, RandomizedSequencesMatchNaiveReference) {
  util::Rng rng(2026);
  for (int round = 0; round < 20; ++round) {
    const Kbit capacity =
        50.0 + 50.0 * static_cast<double>(rng.uniform_int(0, 5));
    SegmentCache cache(capacity);
    NaiveLru naive(capacity);
    for (int step = 0; step < 400; ++step) {
      const SegmentKey k = key(rng.uniform_int(0, 1), rng.uniform_int(0, 7),
                               rng.uniform_int(1, 5));
      switch (rng.uniform_int(0, 4)) {
        case 0:
        case 1: {  // insert dominates so the cache actually fills
          const Kbit size =
              5.0 + 5.0 * static_cast<double>(rng.uniform_int(0, 10));
          EXPECT_EQ(cache.insert(k, size), naive.insert(k, size));
          break;
        }
        case 2:
          EXPECT_EQ(cache.touch(k), naive.touch(k));
          break;
        case 3:
          EXPECT_EQ(cache.contains(k), naive.contains(k));
          break;
        case 4:
          EXPECT_EQ(cache.erase(k), naive.erase(k));
          break;
      }
      ASSERT_EQ(cache.keys_mru_to_lru(), naive.keys_mru_to_lru())
          << "round " << round << " step " << step;
      ASSERT_DOUBLE_EQ(cache.used_kbit(), naive.used());
      ASSERT_EQ(cache.evictions(), naive.evictions());
      ASSERT_LE(cache.used_kbit(), cache.capacity_kbit());
      const SegmentKey probe = key(rng.uniform_int(0, 1),
                                   rng.uniform_int(0, 7), rng.uniform_int(1, 5));
      ASSERT_EQ(cache.best_ancestor_level(probe.game, probe.content_index,
                                          probe.level),
                naive.best_ancestor_level(probe.game, probe.content_index,
                                          probe.level));
    }
  }
}

}  // namespace
}  // namespace cloudfog::cache
