// JointAdmissionPolicy unit tests: the three-way hit/transcode/fetch
// decision, its boundaries, and the egress-price flip that makes the
// policy joint rather than delay-only.
#include "cache/admission.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cloudfog::cache {
namespace {

AdmissionConfig config(double transcode_base, double transcode_per_kbit,
                       double fetch_kbps, double fetch_base,
                       double egress_price) {
  AdmissionConfig cfg;
  cfg.transcode.base_ms = transcode_base;
  cfg.transcode.ms_per_kbit = transcode_per_kbit;
  cfg.fetch_kbps = fetch_kbps;
  cfg.fetch_base_ms = fetch_base;
  cfg.egress_cost_ms_per_kbit = egress_price;
  return cfg;
}

TEST(AdmissionTest, ExactHitAlwaysWins) {
  // Even with an absurdly cheap fetch, a cached exact variant is free.
  JointAdmissionPolicy policy(config(0.0, 0.0, 1e9, 0.0, 0.0));
  const auto d = policy.decide(/*cached_exact=*/true, /*cached_ancestor=*/true,
                               100.0);
  EXPECT_EQ(d.source, ServeSource::kCacheHit);
  EXPECT_DOUBLE_EQ(d.delay_ms, 0.0);
}

TEST(AdmissionTest, NoAncestorMeansFetch) {
  JointAdmissionPolicy policy(config(0.0, 0.0, 100'000.0, 0.5, 10.0));
  const auto d = policy.decide(false, false, 100.0);
  EXPECT_EQ(d.source, ServeSource::kCloudFetch);
  EXPECT_DOUBLE_EQ(d.delay_ms, 0.5 + 100.0 / 100'000.0 * 1000.0);
}

TEST(AdmissionTest, CheapTranscodeBeatsFetch) {
  // transcode = 1 ms; fetch = 0.5 + 1 = 1.5 ms (no egress price needed).
  JointAdmissionPolicy policy(config(1.0, 0.0, 100'000.0, 0.5, 0.0));
  const auto d = policy.decide(false, true, 100.0);
  EXPECT_EQ(d.source, ServeSource::kTranscode);
  EXPECT_DOUBLE_EQ(d.delay_ms, 1.0);
}

TEST(AdmissionTest, CostlyTranscodeLosesToFetchWhenEgressIsFree) {
  // transcode = 5 ms; fetch = 1.5 ms and egress costs nothing.
  JointAdmissionPolicy policy(config(5.0, 0.0, 100'000.0, 0.5, 0.0));
  const auto d = policy.decide(false, true, 100.0);
  EXPECT_EQ(d.source, ServeSource::kCloudFetch);
}

TEST(AdmissionTest, EgressPriceFlipsTheDecision) {
  // Same 5 ms transcode, but each of the 100 fetched kbit now costs
  // 0.05 ms of priced egress: fetch cost = 1.5 + 5.0 = 6.5 > 5.0.
  JointAdmissionPolicy policy(config(5.0, 0.0, 100'000.0, 0.5, 0.05));
  const auto d = policy.decide(false, true, 100.0);
  EXPECT_EQ(d.source, ServeSource::kTranscode);
  // The *player-visible* delay is the transcode time; the egress price is
  // a decision weight, not a latency.
  EXPECT_DOUBLE_EQ(d.delay_ms, 5.0);
}

TEST(AdmissionTest, ExactCostTiePrefersTheEdge) {
  // transcode = 1.5 ms == fetch cost = 0.5 + 1.0 + 0.0: spend fog CPU,
  // not cloud bandwidth.
  JointAdmissionPolicy policy(config(1.5, 0.0, 100'000.0, 0.5, 0.0));
  const auto d = policy.decide(false, true, 100.0);
  EXPECT_EQ(d.source, ServeSource::kTranscode);
}

TEST(AdmissionTest, SizeScalesBothSides) {
  // Per-kbit transcode cost vs per-kbit egress price: small outputs
  // transcode, large outputs fetch (transcode grows faster here).
  JointAdmissionPolicy policy(config(0.0, 0.1, 1e9, 1.0, 0.01));
  EXPECT_EQ(policy.decide(false, true, 10.0).source, ServeSource::kTranscode);
  EXPECT_EQ(policy.decide(false, true, 100.0).source,
            ServeSource::kCloudFetch);
}

TEST(AdmissionTest, DelayHelpersMatchTheModel) {
  JointAdmissionPolicy policy(config(2.0, 0.01, 50'000.0, 0.5, 0.05));
  EXPECT_DOUBLE_EQ(policy.transcode_delay_ms(100.0), 2.0 + 1.0);
  EXPECT_DOUBLE_EQ(policy.fetch_delay_ms(100.0), 0.5 + 2.0);
  EXPECT_DOUBLE_EQ(policy.fetch_cost_ms(100.0), 0.5 + 2.0 + 5.0);
}

TEST(AdmissionTest, InvalidConfigRejected) {
  EXPECT_THROW(JointAdmissionPolicy(config(2.0, 0.01, 0.0, 0.5, 0.0)),
               std::logic_error);
  EXPECT_THROW(JointAdmissionPolicy(config(2.0, 0.01, 1000.0, -1.0, 0.0)),
               std::logic_error);
  EXPECT_THROW(JointAdmissionPolicy(config(2.0, 0.01, 1000.0, 0.5, -0.1)),
               std::logic_error);
}

TEST(AdmissionTest, NonPositiveSizeRejected) {
  JointAdmissionPolicy policy(config(2.0, 0.01, 1000.0, 0.5, 0.0));
  EXPECT_THROW(policy.decide(false, false, 0.0), std::logic_error);
}

TEST(AdmissionTest, ServeSourceNames) {
  EXPECT_STREQ(to_string(ServeSource::kCacheHit), "hit");
  EXPECT_STREQ(to_string(ServeSource::kTranscode), "transcode");
  EXPECT_STREQ(to_string(ServeSource::kCloudFetch), "fetch");
}

}  // namespace
}  // namespace cloudfog::cache
