// EdgeCacheService tests: the joint hit/transcode/fetch serving flow,
// content-loop addressing, per-fleet accounting, and the churn contract
// (a departing supernode releases its cache and cancels its jobs).
#include "cache/edge_cache_service.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/simulator.h"
#include "stream/video.h"

namespace cloudfog::cache {
namespace {

// A level-3 (800 kbps) segment covering 100 ms => 80 kbit nominal variant.
stream::VideoSegment segment(int level, TimeMs action_ms,
                             game::GameId game = 0) {
  stream::VideoSegment seg;
  seg.id = 1;
  seg.player = 500;
  seg.game = game;
  seg.quality_level = level;
  seg.duration_ms = 100.0;
  seg.size_kbit = 77.0;  // per-player VBR size; the cache must ignore it
  seg.action_time_ms = action_ms;
  seg.deadline_ms = action_ms + 70.0;
  return seg;
}

EdgeCacheServiceConfig config(double kbit_per_slot,
                              double egress_price = 0.05) {
  EdgeCacheServiceConfig cfg;
  cfg.kbit_per_slot = kbit_per_slot;
  cfg.content_loop_segments = 10;
  cfg.admission.egress_cost_ms_per_kbit = egress_price;
  return cfg;
}

TEST(EdgeCacheServiceTest, FirstRequestFetchesSecondHits) {
  sim::Simulator sim;
  EdgeCacheService service(sim, config(1'000.0));
  service.add_supernode(1, 1);

  int delivered = 0;
  const auto first = service.request(1, segment(3, 0.0), [&] { ++delivered; });
  EXPECT_EQ(first.source, ServeSource::kCloudFetch);
  EXPECT_DOUBLE_EQ(first.content_kbit, 80.0);  // 800 kbps x 100 ms, not 77
  EXPECT_EQ(delivered, 0);  // fetch is deferred by the modelled delay
  sim.run_until(10.0);
  EXPECT_EQ(delivered, 1);

  // Same content index (action 30 ms -> index 0): exact hit, inline.
  const auto second = service.request(1, segment(3, 30.0), [&] { ++delivered; });
  EXPECT_EQ(second.source, ServeSource::kCacheHit);
  EXPECT_DOUBLE_EQ(second.delay_ms, 0.0);
  EXPECT_EQ(delivered, 2);

  EXPECT_EQ(service.totals().hits, 1u);
  EXPECT_EQ(service.totals().misses, 1u);
  EXPECT_EQ(service.totals().fetches(), 1u);
  EXPECT_DOUBLE_EQ(service.totals().bytes_cloud_kbit, 80.0);
  EXPECT_DOUBLE_EQ(service.totals().bytes_edge_kbit, 80.0);
}

TEST(EdgeCacheServiceTest, ContentLoopFoldsTheTimeline) {
  sim::Simulator sim;
  EdgeCacheService service(sim, config(1'000.0));
  service.add_supernode(1, 1);
  // duration 100 ms, loop 10 segments => the timeline repeats every 1 s.
  EXPECT_EQ(service.content_index(segment(3, 0.0)), 0u);
  EXPECT_EQ(service.content_index(segment(3, 250.0)), 2u);
  EXPECT_EQ(service.content_index(segment(3, 1'250.0)), 2u);  // wrapped
}

TEST(EdgeCacheServiceTest, DownLadderTranscodeFromCachedAncestor) {
  sim::Simulator sim;
  EdgeCacheService service(sim, config(10'000.0));
  service.add_supernode(1, 1);

  int delivered = 0;
  // Seed the level-5 variant (fetch), then ask for level 3 of the same
  // content: with the egress price on, transcode (2 + 0.01x80 = 2.8 ms)
  // beats fetch cost (0.5 + 0.8 + 0.05x80 = 5.3 ms).
  service.request(1, segment(5, 0.0), [&] { ++delivered; });
  sim.run_until(10.0);
  const auto down = service.request(1, segment(3, 10.0), [&] { ++delivered; });
  EXPECT_EQ(down.source, ServeSource::kTranscode);
  EXPECT_EQ(down.transcoded_from, 5);
  EXPECT_DOUBLE_EQ(down.delay_ms, 2.0 + 0.01 * 80.0);
  EXPECT_EQ(delivered, 1);  // transcode still in flight
  sim.run_until(20.0);
  EXPECT_EQ(delivered, 2);

  // The transcoded variant was admitted: a repeat is now an exact hit.
  const auto again = service.request(1, segment(3, 20.0), [&] { ++delivered; });
  EXPECT_EQ(again.source, ServeSource::kCacheHit);
  EXPECT_EQ(service.totals().transcodes, 1u);
  // Only the level-5 seed crossed the cloud uplink.
  EXPECT_DOUBLE_EQ(service.totals().bytes_cloud_kbit,
                   1'800.0 * 100.0 / 1'000.0);
}

TEST(EdgeCacheServiceTest, FreeEgressMakesCostlyTranscodeFetchInstead) {
  sim::Simulator sim;
  EdgeCacheService service(sim, config(10'000.0, /*egress_price=*/0.0));
  service.add_supernode(1, 1);
  int delivered = 0;
  service.request(1, segment(5, 0.0), [&] { ++delivered; });
  sim.run_until(10.0);
  // transcode 2.8 ms > fetch 0.5 + 0.8 = 1.3 ms and egress is free.
  const auto down = service.request(1, segment(3, 10.0), [&] { ++delivered; });
  EXPECT_EQ(down.source, ServeSource::kCloudFetch);
  EXPECT_EQ(service.totals().transcodes, 0u);
}

TEST(EdgeCacheServiceTest, ZeroCapacityFetchesEverything) {
  sim::Simulator sim;
  EdgeCacheService service(sim, config(0.0));
  service.add_supernode(1, 3);
  int delivered = 0;
  for (int i = 0; i < 4; ++i) {
    const auto out =
        service.request(1, segment(3, 30.0 * i), [&] { ++delivered; });
    EXPECT_EQ(out.source, ServeSource::kCloudFetch);
  }
  sim.run_until(100.0);
  EXPECT_EQ(delivered, 4);
  EXPECT_EQ(service.totals().hits, 0u);
  EXPECT_EQ(service.totals().misses, 4u);
  EXPECT_DOUBLE_EQ(service.totals().bytes_cloud_kbit, 4 * 80.0);
  EXPECT_DOUBLE_EQ(service.totals().bytes_edge_kbit, 0.0);
}

TEST(EdgeCacheServiceTest, CachesArePerSupernode) {
  sim::Simulator sim;
  EdgeCacheService service(sim, config(1'000.0));
  service.add_supernode(1, 1);
  service.add_supernode(2, 1);
  int delivered = 0;
  service.request(1, segment(3, 0.0), [&] { ++delivered; });
  sim.run_until(10.0);
  // Node 2 shares nothing with node 1: same content still misses there.
  const auto other = service.request(2, segment(3, 10.0), [&] { ++delivered; });
  EXPECT_EQ(other.source, ServeSource::kCloudFetch);
  EXPECT_EQ(service.node_cache(1).entry_count(), 1u);
  EXPECT_EQ(service.node_cache(2).entry_count(), 0u);
}

TEST(EdgeCacheServiceTest, RemoveSupernodeCancelsInFlightJobs) {
  sim::Simulator sim;
  EdgeCacheService service(sim, config(1'000.0));
  service.add_supernode(1, 1);
  int delivered = 0;
  service.request(1, segment(3, 0.0), [&] { ++delivered; });
  ASSERT_EQ(service.transcoder().in_flight(1), 1u);

  service.remove_supernode(1);
  EXPECT_FALSE(service.has_supernode(1));
  EXPECT_EQ(service.transcoder().in_flight(1), 0u);
  EXPECT_EQ(service.totals().cancelled_jobs, 1u);
  sim.run_until(100.0);
  // The departed node's fetch never completes a delivery.
  EXPECT_EQ(delivered, 0);
}

TEST(EdgeCacheServiceTest, RemovedNodeStateIsGone) {
  sim::Simulator sim;
  EdgeCacheService service(sim, config(1'000.0));
  service.add_supernode(1, 1);
  service.remove_supernode(1);
  EXPECT_THROW(service.node_cache(1), std::logic_error);
  EXPECT_THROW(service.request(1, segment(3, 0.0), [] {}), std::logic_error);
  EXPECT_THROW(service.remove_supernode(1), std::logic_error);
  // Re-registration after churn is legal (a node may come back).
  service.add_supernode(1, 2);
  EXPECT_TRUE(service.has_supernode(1));
}

TEST(EdgeCacheServiceTest, DuplicateRegistrationRejected) {
  sim::Simulator sim;
  EdgeCacheService service(sim, config(1'000.0));
  service.add_supernode(1, 1);
  EXPECT_THROW(service.add_supernode(1, 1), std::logic_error);
}

TEST(EdgeCacheServiceTest, ObserverSeesEveryDecision) {
  sim::Simulator sim;
  EdgeCacheService service(sim, config(1'000.0));
  service.add_supernode(1, 1);
  std::vector<ServeSource> seen;
  service.set_serve_observer(
      [&](NodeId node, const stream::VideoSegment&,
          const EdgeCacheService::ServeOutcome& outcome) {
        EXPECT_EQ(node, 1);
        seen.push_back(outcome.source);
      });
  service.request(1, segment(3, 0.0), [] {});
  sim.run_until(10.0);
  service.request(1, segment(3, 10.0), [] {});
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], ServeSource::kCloudFetch);
  EXPECT_EQ(seen[1], ServeSource::kCacheHit);
}

TEST(EdgeCacheServiceTest, CapacityScalesWithSlots) {
  sim::Simulator sim;
  EdgeCacheService service(sim, config(500.0));
  service.add_supernode(1, 4);
  EXPECT_DOUBLE_EQ(service.node_cache(1).capacity_kbit(), 2'000.0);
}

TEST(EdgeCacheServiceTest, InterceptorDecliningLeavesFetchUnchanged) {
  sim::Simulator sim;
  EdgeCacheService service(sim, config(1'000.0));
  service.add_supernode(1, 1);
  int consulted = 0;
  service.set_fetch_interceptor([&](NodeId, const stream::VideoSegment&, Kbit,
                                    EdgeCacheService::DeliverFn) {
    ++consulted;
    return false;  // decline: the plain cloud fetch must proceed
  });
  int delivered = 0;
  const auto outcome = service.request(1, segment(3, 0.0), [&] { ++delivered; });
  EXPECT_EQ(consulted, 1);
  EXPECT_EQ(outcome.source, ServeSource::kCloudFetch);
  sim.run_until(10.0);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(service.totals().coop_probes, 0u);
  EXPECT_DOUBLE_EQ(service.totals().bytes_cloud_kbit, 80.0);
}

TEST(EdgeCacheServiceTest, PeerFetchResolvesWithoutCloudEgress) {
  sim::Simulator sim;
  EdgeCacheService service(sim, config(1'000.0));
  service.add_supernode(1, 1);  // requester
  service.add_supernode(2, 1);  // peer that will hold the variant
  // Warm the peer: node 2 fetches the variant once.
  service.request(2, segment(3, 0.0), [] {});
  sim.run_until(10.0);
  const double cloud_after_warm = service.totals().bytes_cloud_kbit;

  // Interceptor takes over node 1's miss and resolves it off node 2.
  EdgeCacheService::DeliverFn pending;
  service.set_fetch_interceptor([&](NodeId node, const stream::VideoSegment&,
                                    Kbit, EdgeCacheService::DeliverFn deliver) {
    EXPECT_EQ(node, 1);
    pending = std::move(deliver);
    return true;
  });
  int delivered = 0;
  const auto probe = service.request(1, segment(3, 20.0), [&] { ++delivered; });
  EXPECT_EQ(probe.source, ServeSource::kPeerProbe);
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(service.totals().coop_probes, 1u);

  EXPECT_TRUE(service.probe_hit(2, segment(3, 20.0)));
  EXPECT_FALSE(service.probe_hit(2, segment(4, 20.0)));   // other variant
  EXPECT_FALSE(service.probe_hit(99, segment(3, 20.0)));  // departed peer

  service.complete_peer_fetch(1, segment(3, 20.0), std::move(pending));
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(service.totals().coop_hits, 1u);
  EXPECT_DOUBLE_EQ(service.totals().bytes_peer_kbit, 80.0);
  // No new cloud bytes — and the variant is now admitted locally: the next
  // request on node 1 is a plain hit.
  EXPECT_DOUBLE_EQ(service.totals().bytes_cloud_kbit, cloud_after_warm);
  const auto next = service.request(1, segment(3, 40.0), [] {});
  EXPECT_EQ(next.source, ServeSource::kCacheHit);
}

TEST(EdgeCacheServiceTest, CloudFallbackAfterAllPeersMiss) {
  sim::Simulator sim;
  EdgeCacheService service(sim, config(1'000.0));
  service.add_supernode(1, 1);
  EdgeCacheService::DeliverFn pending;
  service.set_fetch_interceptor([&](NodeId, const stream::VideoSegment&, Kbit,
                                    EdgeCacheService::DeliverFn deliver) {
    pending = std::move(deliver);
    return true;
  });
  int delivered = 0;
  service.request(1, segment(3, 0.0), [&] { ++delivered; });
  ASSERT_TRUE(static_cast<bool>(pending));

  ServeSource resolved = ServeSource::kPeerProbe;
  service.set_serve_observer(
      [&](NodeId, const stream::VideoSegment&,
          const EdgeCacheService::ServeOutcome& outcome) {
        resolved = outcome.source;
      });
  service.cloud_fetch_fallback(1, segment(3, 0.0), std::move(pending));
  EXPECT_EQ(resolved, ServeSource::kCloudFetch);
  EXPECT_EQ(delivered, 0);  // transfer delay still applies
  sim.run_until(10.0);
  EXPECT_EQ(delivered, 1);
  EXPECT_DOUBLE_EQ(service.totals().bytes_cloud_kbit, 80.0);
  EXPECT_EQ(service.totals().misses, 1u);  // counted once, at probe time
}

}  // namespace
}  // namespace cloudfog::cache
